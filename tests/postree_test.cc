// Unit tests for the POS-Tree: builder canonicalization, lookup/positional
// access against reference containers, functional mutation, validation and
// tamper detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "chunk/mem_chunk_store.h"
#include "postree/tree.h"
#include "util/random.h"

namespace forkbase {
namespace {

std::vector<std::pair<std::string, std::string>> MakeKvs(size_t n,
                                                         uint64_t seed = 1) {
  Rng rng(seed);
  std::map<std::string, std::string> sorted;
  while (sorted.size() < n) {
    sorted["key" + rng.NextString(12)] = rng.NextString(24);
  }
  return {sorted.begin(), sorted.end()};
}

// --------------------------------------------------------------- Builder --

TEST(TreeBuilderTest, EmptyTreeIsCanonicalEmptyLeaf) {
  MemChunkStore store;
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, {});
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->count, 0u);
  EXPECT_EQ(info->height, 1u);
  auto chunk = store.Get(info->root);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->type(), ChunkType::kMapLeaf);
  EXPECT_TRUE(chunk->payload().empty());
}

TEST(TreeBuilderTest, EmptyTreesOfDifferentTypesDiffer) {
  MemChunkStore store;
  auto map_info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, {});
  auto set_info = PosTree::BuildKeyed(&store, ChunkType::kSetLeaf, {});
  ASSERT_TRUE(map_info.ok());
  ASSERT_TRUE(set_info.ok());
  EXPECT_NE(map_info->root, set_info->root);
}

TEST(TreeBuilderTest, SingleEntryRootIsLeaf) {
  MemChunkStore store;
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf,
                                  {{"only", "entry"}});
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->count, 1u);
  EXPECT_EQ(info->height, 1u);
  auto chunk = store.Get(info->root);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->type(), ChunkType::kMapLeaf);
}

TEST(TreeBuilderTest, LargeTreeGrowsHeightAndValidates) {
  MemChunkStore store;
  auto kvs = MakeKvs(20000);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->count, kvs.size());
  EXPECT_GE(info->height, 2u);
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  ASSERT_TRUE(tree.Validate().ok());
  auto shape = tree.Shape();
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->entries, kvs.size());
  EXPECT_GT(shape->leaf_nodes, 1u);
  EXPECT_EQ(shape->height, info->height);
}

TEST(TreeBuilderTest, RebuildIsBitIdentical) {
  MemChunkStore s1, s2;
  auto kvs = MakeKvs(5000);
  auto a = PosTree::BuildKeyed(&s1, ChunkType::kMapLeaf, kvs);
  auto b = PosTree::BuildKeyed(&s2, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->root, b->root) << "same records must give the same root";
  EXPECT_EQ(a->nodes_written, b->nodes_written);
}

TEST(TreeBuilderTest, NodesRespectSizeBounds) {
  MemChunkStore store;
  auto kvs = MakeKvs(20000);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  SplitConfig cfg = SplitConfig::Entries();
  size_t oversize = 0, total = 0;
  store.ForEach([&](const Hash256&, const Chunk& chunk) {
    ++total;
    // +1 tag byte; the final node of a level may be undersized, and an
    // entry straddling max_bytes may overshoot by one entry length.
    if (chunk.size() > cfg.max_bytes + 256) ++oversize;
  });
  EXPECT_EQ(oversize, 0u);
  EXPECT_GT(total, 10u);
}

// -------------------------------------------------------------- Splitter --

// RollingHash::Roll may fire on the very first full window; the splitter's
// min_bytes clamp is the only guard against a window-sized sliver chunk at
// stream start. q_bits = 0 makes the pattern fire at EVERY full-window
// position, so an unclamped splitter would close at byte `window`.
TEST(NodeSplitterTest, FirstWindowFireIsClampedByMinBytes) {
  NodeSplitter splitter(SplitConfig{32, 0, 256, 8192});
  Rng rng(11);
  std::string bytes = rng.NextString(1024);
  size_t first_close = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (splitter.AddByte(static_cast<uint8_t>(bytes[i]))) {
      first_close = i + 1;
      break;
    }
  }
  EXPECT_EQ(first_close, 256u)
      << "pattern fires from byte 32 on, but min_bytes must hold the node";
}

TEST(NodeSplitterTest, MinBytesIsRaisedToTheWindow) {
  // A config with min_bytes < window would re-open the sliver-chunk hole;
  // the constructor repairs it.
  NodeSplitter splitter(SplitConfig{64, 0, 8, 4096});
  EXPECT_EQ(splitter.config().min_bytes, 64u);
  Rng rng(12);
  std::string bytes = rng.NextString(256);
  size_t first_close = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (splitter.AddByte(static_cast<uint8_t>(bytes[i]))) {
      first_close = i + 1;
      break;
    }
  }
  EXPECT_EQ(first_close, 64u);
}

namespace {
// All cut offsets (exclusive end positions) the splitter chooses over
// `bytes` starting from `from`, resetting at each cut.
std::vector<size_t> CutPoints(const SplitConfig& cfg, const std::string& bytes,
                              size_t from) {
  NodeSplitter splitter(cfg);
  std::vector<size_t> cuts;
  for (size_t i = from; i < bytes.size(); ++i) {
    if (splitter.AddByte(static_cast<uint8_t>(bytes[i]))) {
      cuts.push_back(i + 1);
      splitter.ResetNode();
    }
  }
  return cuts;
}
}  // namespace

TEST(NodeSplitterTest, CutPointsResynchronizeMidStream) {
  // Boundary decisions depend only on bytes since the last cut, so a stream
  // re-entered at any prior cut point must reproduce every later cut.
  SplitConfig cfg = SplitConfig::Blob();
  Rng rng(13);
  std::string bytes = rng.NextString(96 * 1024);
  auto full = CutPoints(cfg, bytes, 0);
  ASSERT_GE(full.size(), 4u) << "stream too small to exercise resync";
  for (size_t i = 0; i < full.size(); ++i) {
    size_t gap = i == 0 ? full[0] : full[i] - full[i - 1];
    EXPECT_GE(gap, cfg.min_bytes) << "cut " << i;
    EXPECT_LE(gap, cfg.max_bytes) << "cut " << i;
  }
  auto resumed = CutPoints(cfg, bytes, full[1]);
  std::vector<size_t> tail(full.begin() + 2, full.end());
  EXPECT_EQ(resumed, tail);
}

TEST(TreeBuilderTest, BlobFeedGranularityDoesNotChangeChunks) {
  // Same bytes, different AddBytes slicing ⇒ identical cut points, and so
  // identical chunks and root. This is the property that makes blob ids a
  // function of content alone, not of the writer's buffering.
  Rng rng(14);
  std::string bytes = rng.NextString(80 * 1024);

  auto build = [&](size_t max_piece) -> TreeInfo {
    MemChunkStore store;
    TreeBuilder builder(&store, ChunkType::kBlobLeaf, TreeConfig::ForBlob());
    Rng piece_rng(max_piece);
    size_t off = 0;
    while (off < bytes.size()) {
      size_t n = max_piece <= 1
                     ? 1
                     : 1 + piece_rng.Uniform(
                               std::min(max_piece, bytes.size() - off));
      n = std::min(n, bytes.size() - off);
      EXPECT_TRUE(builder.AddBytes(Slice(bytes.data() + off, n)).ok());
      off += n;
    }
    auto info = builder.Finish();
    EXPECT_TRUE(info.ok());
    return *info;
  };

  TreeInfo whole;
  {
    MemChunkStore store;
    TreeBuilder builder(&store, ChunkType::kBlobLeaf, TreeConfig::ForBlob());
    ASSERT_TRUE(builder.AddBytes(bytes).ok());
    auto info = builder.Finish();
    ASSERT_TRUE(info.ok());
    whole = *info;
  }
  TreeInfo byte_at_a_time = build(1);
  TreeInfo ragged = build(4096);
  EXPECT_EQ(whole.root, byte_at_a_time.root);
  EXPECT_EQ(whole.root, ragged.root);
  EXPECT_EQ(whole.nodes_written, byte_at_a_time.nodes_written);
  EXPECT_EQ(whole.nodes_written, ragged.nodes_written);
}

// --------------------------------------------------------------- Lookup --

class PosTreeLookupTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PosTreeLookupTest, MatchesReferenceMap) {
  MemChunkStore store;
  auto kvs = MakeKvs(GetParam(), /*seed=*/GetParam());
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);

  // Every present key is found with its value.
  Rng rng(7);
  for (size_t trial = 0; trial < std::min<size_t>(kvs.size(), 200); ++trial) {
    const auto& [key, value] = kvs[rng.Uniform(kvs.size())];
    auto found = tree.Lookup(key);
    ASSERT_TRUE(found.ok());
    ASSERT_TRUE(found->has_value()) << key;
    EXPECT_EQ(**found, value);
  }
  // Absent keys (outside and inside the key range) are not found.
  auto missing_low = tree.Lookup("kex");
  ASSERT_TRUE(missing_low.ok());
  EXPECT_FALSE(missing_low->has_value());
  auto missing_high = tree.Lookup("kez");
  ASSERT_TRUE(missing_high.ok());
  EXPECT_FALSE(missing_high->has_value());
  auto count = tree.Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, kvs.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PosTreeLookupTest,
                         ::testing::Values(1, 2, 10, 100, 1000, 20000));

TEST(PosTreeScanTest, ScanReturnsEntriesInKeyOrder) {
  MemChunkStore store;
  auto kvs = MakeKvs(3000);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  auto entries = tree.Entries();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(*entries, kvs);
}

TEST(PosTreeScanTest, EarlyStopPropagates) {
  MemChunkStore store;
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, MakeKvs(100));
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  int seen = 0;
  Status s = tree.Scan([&seen](const EntryView&) {
    if (++seen == 5) return Status::InvalidArgument("stop");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(seen, 5);
}

// -------------------------------------------------------------- Keyed ops --

TEST(PosTreeApplyOpsTest, UpsertAndDeleteMatchReference) {
  MemChunkStore store;
  auto kvs = MakeKvs(2000, 3);
  std::map<std::string, std::string> reference(kvs.begin(), kvs.end());
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);

  Rng rng(9);
  std::vector<KeyedOp> ops;
  // Updates of existing keys.
  for (int i = 0; i < 50; ++i) {
    const auto& key = kvs[rng.Uniform(kvs.size())].first;
    std::string value = rng.NextString(10);
    ops.push_back(KeyedOp{key, value});
    reference[key] = value;
  }
  // Inserts of new keys.
  for (int i = 0; i < 50; ++i) {
    std::string key = "zzz" + rng.NextString(8);
    std::string value = rng.NextString(10);
    ops.push_back(KeyedOp{key, value});
    reference[key] = value;
  }
  // Deletes (existing and non-existing).
  for (int i = 0; i < 25; ++i) {
    const auto& key = kvs[rng.Uniform(kvs.size())].first;
    ops.push_back(KeyedOp{key, std::nullopt});
    reference.erase(key);
  }
  ops.push_back(KeyedOp{"not-present", std::nullopt});

  auto updated = tree.ApplyKeyedOps(ops);
  ASSERT_TRUE(updated.ok());
  PosTree new_tree(&store, ChunkType::kMapLeaf, updated->root);
  auto entries = new_tree.Entries();
  ASSERT_TRUE(entries.ok());
  std::vector<std::pair<std::string, std::string>> expected(reference.begin(),
                                                            reference.end());
  EXPECT_EQ(*entries, expected);
  ASSERT_TRUE(new_tree.Validate().ok());
}

TEST(PosTreeApplyOpsTest, UpdateEqualsFromScratchBuild) {
  // Structural invariance under mutation: applying ops must give the exact
  // tree a from-scratch build of the resulting record set gives.
  MemChunkStore store;
  auto kvs = MakeKvs(4000, 5);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);

  std::map<std::string, std::string> reference(kvs.begin(), kvs.end());
  std::vector<KeyedOp> ops{{kvs[100].first, std::string("new-value")},
                           {kvs[200].first, std::nullopt},
                           {std::string("brand-new-key"), std::string("v")}};
  for (const auto& op : ops) {
    if (op.value) reference[op.key] = *op.value;
    else reference.erase(op.key);
  }
  auto incremental = tree.ApplyKeyedOps(ops);
  ASSERT_TRUE(incremental.ok());

  MemChunkStore fresh;
  auto scratch = PosTree::BuildKeyed(
      &fresh, ChunkType::kMapLeaf,
      std::vector<std::pair<std::string, std::string>>(reference.begin(),
                                                       reference.end()));
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(incremental->root, scratch->root);
}

TEST(PosTreeApplyOpsTest, LastWinsForDuplicateOps) {
  MemChunkStore store;
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, {});
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  auto updated = tree.ApplyKeyedOps({{std::string("k"), std::string("first")},
                                     {std::string("k"), std::string("last")}});
  ASSERT_TRUE(updated.ok());
  PosTree t2(&store, ChunkType::kMapLeaf, updated->root);
  auto v = t2.Lookup("k");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ(**v, "last");
}

// ----------------------------------------------------------- List / blob --

TEST(PosTreeListTest, ElementAccessMatchesVector) {
  MemChunkStore store;
  Rng rng(11);
  std::vector<std::string> elems;
  for (int i = 0; i < 5000; ++i) elems.push_back(rng.NextString(16));
  auto info = PosTree::BuildList(&store, elems);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->count, elems.size());
  PosTree tree(&store, ChunkType::kListLeaf, info->root);
  for (uint64_t i : {0ull, 1ull, 999ull, 4999ull}) {
    auto e = tree.Element(i);
    ASSERT_TRUE(e.ok()) << i;
    EXPECT_EQ(*e, elems[i]);
  }
  EXPECT_TRUE(tree.Element(5000).status().IsNotFound());
  ASSERT_TRUE(tree.Validate().ok());
}

TEST(PosTreeListTest, SpliceMatchesVectorSplice) {
  MemChunkStore store;
  Rng rng(13);
  std::vector<std::string> elems;
  for (int i = 0; i < 1000; ++i) elems.push_back(rng.NextString(8));
  auto info = PosTree::BuildList(&store, elems);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kListLeaf, info->root);

  std::vector<std::string> inserts{"alpha", "beta", "gamma"};
  auto spliced = tree.SpliceElements(200, 50, inserts);
  ASSERT_TRUE(spliced.ok());

  std::vector<std::string> expected(elems.begin(), elems.begin() + 200);
  expected.insert(expected.end(), inserts.begin(), inserts.end());
  expected.insert(expected.end(), elems.begin() + 250, elems.end());

  MemChunkStore fresh;
  auto scratch = PosTree::BuildList(&fresh, expected);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(spliced->root, scratch->root)
      << "splice must equal from-scratch build (structural invariance)";
}

TEST(PosTreeBlobTest, ReadBytesMatchesSource) {
  MemChunkStore store;
  std::string data = Rng(15).NextBytes(200000);
  auto info = PosTree::BuildBlob(&store, data);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->count, data.size());
  PosTree tree(&store, ChunkType::kBlobLeaf, info->root,
               TreeConfig::ForBlob());
  std::string out;
  ASSERT_TRUE(tree.ReadBytes(0, data.size(), &out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(tree.ReadBytes(12345, 678, &out).ok());
  EXPECT_EQ(out, data.substr(12345, 678));
  ASSERT_TRUE(tree.ReadBytes(199999, 100, &out).ok());
  EXPECT_EQ(out, data.substr(199999));  // clamped at the end
  ASSERT_TRUE(tree.Validate().ok());
}

TEST(PosTreeBlobTest, SpliceBytesEqualsFromScratch) {
  MemChunkStore store;
  std::string data = Rng(17).NextBytes(100000);
  auto info = PosTree::BuildBlob(&store, data);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kBlobLeaf, info->root,
               TreeConfig::ForBlob());
  std::string insert = Rng(18).NextBytes(777);
  auto spliced = tree.SpliceBytes(50000, 1000, insert);
  ASSERT_TRUE(spliced.ok());

  std::string expected = data.substr(0, 50000) + insert + data.substr(51000);
  MemChunkStore fresh;
  auto scratch = PosTree::BuildBlob(&fresh, expected);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(spliced->root, scratch->root);
  EXPECT_EQ(spliced->count, expected.size());
}

TEST(PosTreeBlobTest, AppendViaSpliceAtEnd) {
  MemChunkStore store;
  std::string data = Rng(19).NextBytes(10000);
  auto info = PosTree::BuildBlob(&store, data);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kBlobLeaf, info->root,
               TreeConfig::ForBlob());
  auto appended = tree.SpliceBytes(data.size(), 0, "TAIL");
  ASSERT_TRUE(appended.ok());
  PosTree t2(&store, ChunkType::kBlobLeaf, appended->root,
             TreeConfig::ForBlob());
  std::string out;
  ASSERT_TRUE(t2.ReadBytes(data.size(), 4, &out).ok());
  EXPECT_EQ(out, "TAIL");
}

// ------------------------------------------------------------ Validation --

TEST(PosTreeValidateTest, DetectsTamperedLeaf) {
  MemChunkStore store;
  auto kvs = MakeKvs(5000, 23);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  ASSERT_TRUE(tree.Validate().ok());

  // Tamper with some reachable non-root chunk.
  std::vector<Hash256> chunks;
  ASSERT_TRUE(tree.ReachableChunks(&chunks).ok());
  ASSERT_GT(chunks.size(), 2u);
  ASSERT_TRUE(store.TamperForTesting(chunks[chunks.size() / 2], 5, 0x01));
  Status tampered = tree.Validate();
  EXPECT_TRUE(tampered.IsCorruption()) << tampered.ToString();
}

TEST(PosTreeValidateTest, DetectsMissingChunk) {
  MemChunkStore store;
  auto kvs = MakeKvs(5000, 29);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  std::vector<Hash256> chunks;
  ASSERT_TRUE(tree.ReachableChunks(&chunks).ok());
  ASSERT_TRUE(store.Erase(std::vector<Hash256>{chunks.back()}).ok());
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(PosTreeShapeTest, CountsAddUp) {
  MemChunkStore store;
  auto kvs = MakeKvs(10000, 31);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  auto shape = tree.Shape();
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->total_nodes, shape->leaf_nodes + shape->index_nodes);
  EXPECT_EQ(shape->entries, kvs.size());
  std::vector<Hash256> chunks;
  ASSERT_TRUE(tree.ReachableChunks(&chunks).ok());
  EXPECT_EQ(chunks.size(), shape->total_nodes);
}

}  // namespace
}  // namespace forkbase

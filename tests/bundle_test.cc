// Tests for version bundles: export/import closure transfer between
// independent chunk stores, self-verification, corruption rejection — the
// repo's substitution for the paper's distributed replication.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <utility>

#include "chunk/file_chunk_store.h"
#include "chunk/mem_chunk_store.h"
#include "store/bundle.h"
#include "util/datagen.h"
#include "util/random.h"

namespace forkbase {
namespace {

TEST(BundleTest, RoundTripReplicatesBranch) {
  auto src_store = std::make_shared<MemChunkStore>();
  ForkBase src(src_store);
  CsvGenOptions opts;
  opts.num_rows = 800;
  ASSERT_TRUE(src.PutTableFromCsv("ds", GenerateCsv(opts), 0, "master",
                                  {"alice", "v1"})
                  .ok());
  ASSERT_TRUE(src.UpdateTableCell("ds", "r00000100", 2, "edited", "master",
                                  {"alice", "v2"})
                  .ok());
  auto head = src.Head("ds");
  ASSERT_TRUE(head.ok());

  auto bundle = ExportBundle(*src_store, *head);
  ASSERT_TRUE(bundle.ok());
  EXPECT_GT(bundle->size(), 1000u);

  // Pull into a completely fresh store.
  auto dst_store = std::make_shared<MemChunkStore>();
  auto import = ImportBundle(*bundle, dst_store.get());
  ASSERT_TRUE(import.ok());
  EXPECT_EQ(import->head, *head);
  EXPECT_EQ(import->new_chunks, import->chunks);

  ForkBase dst(dst_store);
  dst.branches().SetHead("ds", "master", import->head);
  EXPECT_TRUE(dst.Verify(*head).ok());
  auto table = dst.GetTable("ds");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(**table->GetCell("r00000100", 2), "edited");
  // Full history travelled with the bundle.
  auto history = dst.History("ds");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 2u);
  EXPECT_EQ((*history)[1].author, "alice");
}

TEST(BundleTest, IncrementalPushSendsOnlyNewChunks) {
  auto src_store = std::make_shared<MemChunkStore>();
  ForkBase src(src_store);
  auto dst_store = std::make_shared<MemChunkStore>();

  CsvGenOptions opts;
  opts.num_rows = 1500;
  ASSERT_TRUE(src.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  auto v1 = src.Head("ds");
  ASSERT_TRUE(v1.ok());
  auto b1 = ExportBundle(*src_store, *v1);
  ASSERT_TRUE(b1.ok());
  auto i1 = ImportBundle(*b1, dst_store.get());
  ASSERT_TRUE(i1.ok());

  // Small edit; the second bundle still carries the closure, but only a few
  // chunks are NEW on the destination.
  ASSERT_TRUE(src.UpdateTableCell("ds", "r00000750", 3, "x").ok());
  auto v2 = src.Head("ds");
  ASSERT_TRUE(v2.ok());
  auto b2 = ExportBundle(*src_store, *v2);
  ASSERT_TRUE(b2.ok());
  auto i2 = ImportBundle(*b2, dst_store.get());
  ASSERT_TRUE(i2.ok());
  EXPECT_LT(i2->new_chunks, i2->chunks / 4)
      << "most chunks were already present (content-addressed transfer)";
}

TEST(BundleTest, RejectsGarbage) {
  MemChunkStore dst;
  EXPECT_TRUE(ImportBundle(Slice("not a bundle"), &dst).status().IsCorruption());
  EXPECT_TRUE(ImportBundle(Slice(""), &dst).status().IsCorruption());
}

TEST(BundleTest, RejectsTamperedChunk) {
  auto src_store = std::make_shared<MemChunkStore>();
  ForkBase src(src_store);
  ASSERT_TRUE(src.PutMap("k", {{"a", "1"}, {"b", "2"}}).ok());
  auto head = src.Head("k");
  ASSERT_TRUE(head.ok());
  auto bundle = ExportBundle(*src_store, *head);
  ASSERT_TRUE(bundle.ok());

  // Flip one byte inside the bundle body (past magic + head).
  std::string corrupted = *bundle;
  corrupted[corrupted.size() - 5] ^= 0x10;
  MemChunkStore dst;
  auto import = ImportBundle(corrupted, &dst);
  ASSERT_FALSE(import.ok());
  EXPECT_TRUE(import.status().IsCorruption());
}

TEST(BundleTest, RejectsMissingHead) {
  auto src_store = std::make_shared<MemChunkStore>();
  ForkBase src(src_store);
  ASSERT_TRUE(src.PutMap("k", {{"a", "1"}}).ok());
  auto head = src.Head("k");
  ASSERT_TRUE(head.ok());
  auto bundle = ExportBundle(*src_store, *head);
  ASSERT_TRUE(bundle.ok());
  // Swap the head uid for a different hash: closure can't contain it.
  std::string forged = *bundle;
  Hash256 fake = Sha256(Slice("fake"));
  std::memcpy(forged.data() + 4, fake.bytes.data(), 32);
  MemChunkStore dst;
  auto import = ImportBundle(forged, &dst);
  ASSERT_FALSE(import.ok());
  EXPECT_TRUE(import.status().IsCorruption());
}

TEST(BundleTest, ExportRefusesTamperedSource) {
  auto src_store = std::make_shared<MemChunkStore>();
  ForkBase src(src_store);
  ASSERT_TRUE(src.PutMap("k", {{"a", "1"}, {"b", "2"}, {"c", "3"}}).ok());
  auto head = src.Head("k");
  ASSERT_TRUE(head.ok());
  auto map = src.GetMap("k");
  ASSERT_TRUE(map.ok());
  src_store->TamperForTesting(map->root(), 2, 0x01);
  auto bundle = ExportBundle(*src_store, *head);
  ASSERT_FALSE(bundle.ok());
  EXPECT_TRUE(bundle.status().IsCorruption());
}

TEST(BundleTest, DeterministicBytes) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  ASSERT_TRUE(db.PutMap("k", {{"x", "1"}, {"y", "2"}}).ok());
  auto head = db.Head("k");
  ASSERT_TRUE(head.ok());
  auto b1 = ExportBundle(*store, *head);
  auto b2 = ExportBundle(*store, *head);
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_EQ(*b1, *b2);
}

TEST(BundleTest, StreamingSinkMatchesStringForm) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 600;
  ASSERT_TRUE(db.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  auto head = db.Head("ds");
  ASSERT_TRUE(head.ok());

  auto whole = ExportBundle(*store, *head);
  ASSERT_TRUE(whole.ok());

  // The sink form produces the same bytes regardless of write granularity.
  std::string streamed;
  auto stats = ExportBundle(*store, *head, [&](Slice bytes) {
    streamed.append(bytes.data(), bytes.size());
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(streamed, *whole);
  EXPECT_EQ(stats->bytes, whole->size());
  EXPECT_GT(stats->chunks, 0u);

  // Sink errors abort the export and surface unchanged.
  auto refused = ExportBundle(*store, *head, [](Slice) {
    return Status::IOError("disk full");
  });
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kIOError);
}

TEST(BundleTest, DeltaBundleShipsOnlyNewChunks) {
  auto src_store = std::make_shared<MemChunkStore>();
  ForkBase src(src_store);
  CsvGenOptions opts;
  opts.num_rows = 1200;
  ASSERT_TRUE(src.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  auto v1 = src.Head("ds");
  ASSERT_TRUE(v1.ok());

  // Replicate v1, then make a small edit on the source.
  auto dst_store = std::make_shared<MemChunkStore>();
  auto full = ExportBundle(*src_store, *v1);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(ImportBundle(*full, dst_store.get()).ok());
  ASSERT_TRUE(src.UpdateTableCell("ds", "r00000600", 2, "edited").ok());
  auto v2 = src.Head("ds");
  ASSERT_TRUE(v2.ok());

  // The delta against the replicated frontier carries only the edit's
  // chunks — unlike the full bundle, which re-ships the whole closure.
  std::string delta;
  auto stats = ExportDeltaBundle(*src_store, {*v2}, {*v1},
                                 [&](Slice bytes) {
                                   delta.append(bytes.data(), bytes.size());
                                   return Status::OK();
                                 });
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(delta.size(), full->size() / 4);

  auto import = ImportBundle(delta, dst_store.get());
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_EQ(import->new_chunks, import->chunks)
      << "a delta bundle carries nothing the receiver already had";
  EXPECT_EQ(import->head, *v2);

  // The replica now reads v2 bit-exact.
  ForkBase dst(dst_store);
  dst.branches().SetHead("ds", "master", *v2);
  ASSERT_TRUE(dst.Verify(*v2).ok());
  EXPECT_EQ(**dst.GetTable("ds")->GetCell("r00000600", 2), "edited");
}

// ------------------------------------------------ streaming importer --

namespace {
// Builds a moderately sized bundle (two commits, many chunks) and returns
// (bundle bytes, head) for the streaming-importer tests.
std::pair<std::string, Hash256> MakeTestBundle() {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase src(store);
  CsvGenOptions opts;
  opts.num_rows = 400;
  EXPECT_TRUE(src.PutTableFromCsv("ds", GenerateCsv(opts), 0, "master",
                                  {"alice", "v1"})
                  .ok());
  EXPECT_TRUE(src.UpdateTableCell("ds", "r00000100", 2, "edited", "master",
                                  {"alice", "v2"})
                  .ok());
  auto head = src.Head("ds");
  EXPECT_TRUE(head.ok());
  auto bundle = ExportBundle(*store, *head);
  EXPECT_TRUE(bundle.ok());
  return {*bundle, *head};
}
}  // namespace

TEST(BundleTest, StreamingImporterMatchesOneShot) {
  auto [bundle, head] = MakeTestBundle();

  auto one_shot_store = std::make_shared<MemChunkStore>();
  auto one_shot = ImportBundle(bundle, one_shot_store.get());
  ASSERT_TRUE(one_shot.ok());

  // Feed the same bytes in awkward, uneven slices — the importer must parse
  // across every possible record boundary.
  auto streamed_store = std::make_shared<MemChunkStore>();
  BundleImporter importer(streamed_store.get());
  const size_t steps[] = {1, 7, 13, 64, 4096};
  size_t offset = 0, turn = 0;
  while (offset < bundle.size()) {
    size_t take = std::min(steps[turn++ % 5], bundle.size() - offset);
    ASSERT_TRUE(importer.Feed(Slice(bundle.data() + offset, take)).ok());
    offset += take;
  }
  auto streamed = importer.Finish();
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  EXPECT_EQ(streamed->head, one_shot->head);
  EXPECT_EQ(streamed->chunks, one_shot->chunks);
  EXPECT_EQ(streamed->new_chunks, one_shot->new_chunks);
  EXPECT_EQ(importer.pending_bytes(), 0u);
  EXPECT_TRUE(streamed_store->Contains(head));
}

TEST(BundleTest, StreamingImporterKeepsCompletedChunksOfATornUpload) {
  auto [bundle, head] = MakeTestBundle();
  (void)head;

  auto dst = std::make_shared<MemChunkStore>();
  BundleImporter importer(dst.get());
  // Only half the stream arrives before the "connection" dies.
  ASSERT_TRUE(importer.Feed(Slice(bundle.data(), bundle.size() / 2)).ok());
  EXPECT_GT(importer.chunks_imported(), 0u)
      << "complete records should land as they stream in";
  auto result = importer.Finish();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  // The chunks that did land persist — this is what lets a retried push
  // negotiate a strictly smaller delta.
  EXPECT_GT(dst->stats().chunk_count, 0u);
}

TEST(BundleTest, StreamingImporterRejectsTamperedRecordMidStream) {
  auto [bundle, head] = MakeTestBundle();
  (void)head;
  bundle[bundle.size() - 5] ^= 0x10;  // flip a bit inside the last record

  auto dst = std::make_shared<MemChunkStore>();
  BundleImporter importer(dst.get());
  Status status = Status::OK();
  size_t offset = 0;
  while (offset < bundle.size() && status.ok()) {
    size_t take = std::min<size_t>(512, bundle.size() - offset);
    status = importer.Feed(Slice(bundle.data() + offset, take));
    offset += take;
  }
  if (status.ok()) status = importer.Finish().status();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  // The error is sticky: the importer refuses everything after.
  EXPECT_FALSE(importer.Feed(Slice(bundle.data(), 1)).ok());
}

// ------------------------------------------------ packed (v3) bundles --

TEST(PackedBundleTest, RawFallbackIsV2PlusOneTagBytePerRecord) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 500;
  ASSERT_TRUE(db.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  auto head = db.Head("ds");
  ASSERT_TRUE(head.ok());
  auto live = MarkLive(*store, {*head});
  ASSERT_TRUE(live.ok());
  std::vector<Hash256> ids(live->begin(), live->end());

  std::string v2, v3;
  auto collect = [](std::string* out) {
    return [out](Slice bytes) {
      out->append(bytes.data(), bytes.size());
      return Status::OK();
    };
  };
  auto s2 = ExportBundleOfIds(*store, {*head}, ids, collect(&v2));
  auto s3 = ExportPackedBundleOfIds(*store, {*head}, ids, collect(&v3));
  ASSERT_TRUE(s2.ok() && s3.ok());
  EXPECT_EQ(s3->chunks, s2->chunks);
  EXPECT_EQ(s3->delta_chunks, 0u) << "a MemChunkStore has no delta records";
  EXPECT_EQ(s3->compressed_chunks, 0u);
  // Identical header length, identical bodies, one encoding tag per record.
  EXPECT_EQ(v3.size(), v2.size() + s2->chunks);

  auto dst = std::make_shared<MemChunkStore>();
  auto import = ImportBundle(Slice(v3), dst.get());
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_EQ(import->chunks, s3->chunks);
  EXPECT_EQ(import->head, *head);
  ForkBase replica(dst);
  replica.branches().SetHead("ds", "master", *head);
  EXPECT_TRUE(replica.Verify(*head).ok());
}

TEST(PackedBundleTest, StreamingImporterHandlesPackedRecords) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  ASSERT_TRUE(db.PutMap("k", {{"a", "1"}, {"b", "2"}, {"c", "3"}}).ok());
  auto head = db.Head("k");
  ASSERT_TRUE(head.ok());
  auto live = MarkLive(*store, {*head});
  ASSERT_TRUE(live.ok());
  std::vector<Hash256> ids(live->begin(), live->end());
  std::string packed;
  ASSERT_TRUE(ExportPackedBundleOfIds(*store, {*head}, ids,
                                      [&](Slice bytes) {
                                        packed.append(bytes.data(),
                                                      bytes.size());
                                        return Status::OK();
                                      })
                  .ok());

  // Byte-at-a-time feed: the tag byte must not confuse record framing.
  auto dst = std::make_shared<MemChunkStore>();
  BundleImporter importer(dst.get());
  for (size_t i = 0; i < packed.size(); ++i) {
    ASSERT_TRUE(importer.Feed(Slice(packed.data() + i, 1)).ok());
  }
  auto result = importer.Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->chunks, ids.size());
  EXPECT_TRUE(dst->Contains(*head));
}

TEST(PackedBundleTest, ShipsDeltaAndCompressedRecordsFromAnEncodedStore) {
  // The payoff case: a source store that actually holds delta chains and LZ
  // blocks exports them at their physical footprint, and the importer
  // rebuilds every logical chunk bit-exactly on a store that knows nothing
  // about the source's encoding.
  const std::string dir =
      ::testing::TempDir() + "/fb_bundle_encoded_src";
  std::filesystem::remove_all(dir);
  FileChunkStore::Options fopts;
  fopts.compression = FileChunkStore::Compression::kLz;
  fopts.delta_chain_depth = 3;
  fopts.delta_window = 8;
  auto fstore_or = FileChunkStore::Open(dir, fopts);
  ASSERT_TRUE(fstore_or.ok());
  auto& fstore = **fstore_or;

  // A version chain (deltas) plus a repetitive chunk (compressed).
  Rng rng(51);
  std::string payload = rng.NextString(1024);
  std::vector<Chunk> chunks;
  for (int v = 0; v < 6; ++v) {
    if (v > 0) payload[rng.Uniform(payload.size())] ^= 0x5a;
    chunks.push_back(Chunk::Make(ChunkType::kCell, payload));
  }
  chunks.push_back(Chunk::Make(ChunkType::kCell,
                               std::string(2048, 'z') + "unique tail"));
  ASSERT_TRUE(fstore.PutMany(chunks).ok());

  std::vector<Hash256> ids;
  for (const auto& c : chunks) ids.push_back(c.hash());
  std::string packed, raw;
  auto collect = [](std::string* out) {
    return [out](Slice bytes) {
      out->append(bytes.data(), bytes.size());
      return Status::OK();
    };
  };
  auto sp = ExportPackedBundleOfIds(fstore, {chunks.front().hash()}, ids,
                                    collect(&packed));
  auto sr = ExportBundleOfIds(fstore, {chunks.front().hash()}, ids,
                              collect(&raw));
  ASSERT_TRUE(sp.ok() && sr.ok());
  EXPECT_GT(sp->delta_chunks, 0u) << "the chain must cross the wire as deltas";
  EXPECT_GT(sp->compressed_chunks, 0u);
  EXPECT_LT(packed.size(), raw.size())
      << "physical records must make the packed bundle smaller";

  auto dst = std::make_shared<MemChunkStore>();
  auto import = ImportBundle(Slice(packed), dst.get());
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_EQ(import->chunks, chunks.size());
  for (const auto& c : chunks) {
    auto got = dst->Get(c.hash());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->bytes().ToString(), c.bytes().ToString());
  }
  std::filesystem::remove_all(dir);
}

TEST(PackedBundleTest, RejectsUnknownRecordEncoding) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  ASSERT_TRUE(db.PutMap("k", {{"a", "1"}}).ok());
  auto head = db.Head("k");
  ASSERT_TRUE(head.ok());
  auto live = MarkLive(*store, {*head});
  ASSERT_TRUE(live.ok());
  std::vector<Hash256> ids(live->begin(), live->end());
  std::string packed;
  ASSERT_TRUE(ExportPackedBundleOfIds(*store, {*head}, ids,
                                      [&](Slice bytes) {
                                        packed.append(bytes.data(),
                                                      bytes.size());
                                        return Status::OK();
                                      })
                  .ok());
  // Header: magic(4) + varint(1 head) + 32 + varint(chunk count). The first
  // record's tag byte sits right after its length varint; corrupt it.
  size_t pos = 4 + 1 + 32;
  while (static_cast<uint8_t>(packed[pos]) & 0x80) ++pos;  // chunk count
  ++pos;
  while (static_cast<uint8_t>(packed[pos]) & 0x80) ++pos;  // record length
  ++pos;
  packed[pos] = 0x7f;  // no such encoding
  MemChunkStore dst;
  auto import = ImportBundle(Slice(packed), &dst);
  ASSERT_FALSE(import.ok());
  EXPECT_TRUE(import.status().IsCorruption());
}

// ------------------------------------------- typed update conveniences --

TEST(FacadeUpdateTest, UpdateMapCommits) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ASSERT_TRUE(db.PutMap("m", {{"a", "1"}}).ok());
  ASSERT_TRUE(db.UpdateMap("m", {KeyedOp{"b", std::string("2")},
                                 KeyedOp{"a", std::nullopt}})
                  .ok());
  auto map = db.GetMap("m");
  ASSERT_TRUE(map.ok());
  EXPECT_FALSE((*map->Get("a")).has_value());
  EXPECT_EQ(**map->Get("b"), "2");
  auto history = db.History("m");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 2u);
}

TEST(FacadeUpdateTest, AppendBlobAndList) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ASSERT_TRUE(db.PutBlob("b", "hello").ok());
  ASSERT_TRUE(db.AppendBlob("b", " world").ok());
  EXPECT_EQ(*db.GetBlob("b")->ReadAll(), "hello world");

  ASSERT_TRUE(db.PutList("l", {"one"}).ok());
  ASSERT_TRUE(db.AppendList("l", "two").ok());
  EXPECT_EQ(*db.GetList("l")->Get(1), "two");
}

TEST(FacadeUpdateTest, UpdateRequiresMatchingType) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ASSERT_TRUE(db.Put("s", Value::String("not a map")).ok());
  EXPECT_FALSE(db.UpdateMap("s", {KeyedOp{"k", std::string("v")}}).ok());
  EXPECT_FALSE(db.AppendBlob("s", "x").ok());
}

}  // namespace
}  // namespace forkbase

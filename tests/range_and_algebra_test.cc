// Tests for range scans (cursor seek) and set algebra.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chunk/mem_chunk_store.h"
#include "postree/cursor.h"
#include "types/map.h"
#include "types/set.h"
#include "util/random.h"

namespace forkbase {
namespace {

std::vector<std::pair<std::string, std::string>> MakeKvs(size_t n,
                                                         uint64_t seed) {
  Rng rng(seed);
  std::map<std::string, std::string> sorted;
  while (sorted.size() < n) {
    sorted[rng.NextString(12)] = rng.NextString(8);
  }
  return {sorted.begin(), sorted.end()};
}

// ----------------------------------------------------------- cursor seek --

class CursorSeekTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CursorSeekTest, AtKeyLandsOnLowerBound) {
  MemChunkStore store;
  auto kvs = MakeKvs(GetParam(), GetParam() + 7);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::string probe = trial % 2 ? rng.NextString(12)
                                  : kvs[rng.Uniform(kvs.size())].first;
    auto cursor = TreeCursor::AtKey(&store, info->root, probe);
    ASSERT_TRUE(cursor.ok());
    auto it = std::lower_bound(
        kvs.begin(), kvs.end(), probe,
        [](const auto& kv, const std::string& k) { return kv.first < k; });
    if (it == kvs.end()) {
      EXPECT_TRUE(cursor->done()) << probe;
    } else {
      ASSERT_FALSE(cursor->done()) << probe;
      EXPECT_EQ(cursor->entry().key.ToString(), it->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CursorSeekTest,
                         ::testing::Values(1, 50, 5000, 50000));

TEST(CursorSeekTest, SeekBeforeFirstAndAfterLast) {
  MemChunkStore store;
  auto kvs = MakeKvs(100, 3);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  auto front = TreeCursor::AtKey(&store, info->root, "");
  ASSERT_TRUE(front.ok());
  ASSERT_FALSE(front->done());
  EXPECT_EQ(front->entry().key.ToString(), kvs.front().first);
  auto past = TreeCursor::AtKey(&store, info->root, "zzzzzzzzzzzzzz");
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past->done());
}

// ------------------------------------------------------------ map ranges --

TEST(MapRangeTest, RangeMatchesReference) {
  MemChunkStore store;
  auto kvs = MakeKvs(20000, 9);
  auto map = FMap::Create(&store, kvs);
  ASSERT_TRUE(map.ok());

  Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    std::string lo = rng.NextString(12);
    std::string hi = rng.NextString(12);
    if (hi < lo) std::swap(lo, hi);
    auto got = map->Range(lo, hi);
    ASSERT_TRUE(got.ok());
    std::vector<std::pair<std::string, std::string>> expected;
    for (const auto& kv : kvs) {
      if (kv.first >= lo && kv.first < hi) expected.push_back(kv);
    }
    EXPECT_EQ(*got, expected) << "[" << lo << ", " << hi << ")";
  }
}

TEST(MapRangeTest, OpenEndedRange) {
  MemChunkStore store;
  auto map = FMap::Create(&store, {{"a", "1"}, {"m", "2"}, {"z", "3"}});
  ASSERT_TRUE(map.ok());
  auto tail = map->Range("m", Slice());
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 2u);
  EXPECT_EQ((*tail)[0].first, "m");
  EXPECT_EQ((*tail)[1].first, "z");
  auto all = map->Range("", Slice());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST(MapRangeTest, EmptyRange) {
  MemChunkStore store;
  auto map = FMap::Create(&store, {{"b", "1"}, {"d", "2"}});
  ASSERT_TRUE(map.ok());
  auto empty = map->Range("c", "c");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  auto between = map->Range("c", "d");
  ASSERT_TRUE(between.ok());
  EXPECT_TRUE(between->empty());
}

TEST(MapRangeTest, EarlyStopPropagates) {
  MemChunkStore store;
  auto kvs = MakeKvs(1000, 11);
  auto map = FMap::Create(&store, kvs);
  ASSERT_TRUE(map.ok());
  int seen = 0;
  Status s = map->ForEachInRange("", Slice(), [&seen](Slice, Slice) {
    return ++seen == 3 ? Status::InvalidArgument("stop") : Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(seen, 3);
}

// ------------------------------------------------------------ set algebra --

class SetAlgebraTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SetAlgebraTest, MatchesStdSetAlgebra) {
  MemChunkStore store;
  Rng rng(GetParam());
  std::set<std::string> ra, rb;
  for (size_t i = 0; i < GetParam(); ++i) {
    // Overlapping membership.
    std::string m = "m" + std::to_string(rng.Uniform(GetParam() * 2));
    if (rng.Uniform(2)) ra.insert(m);
    if (rng.Uniform(2)) rb.insert(m);
  }
  auto a = FSet::Create(&store,
                        std::vector<std::string>(ra.begin(), ra.end()));
  auto b = FSet::Create(&store,
                        std::vector<std::string>(rb.begin(), rb.end()));
  ASSERT_TRUE(a.ok() && b.ok());

  std::set<std::string> expected_union = ra;
  expected_union.insert(rb.begin(), rb.end());
  std::set<std::string> expected_inter, expected_sub;
  for (const auto& m : ra) {
    if (rb.count(m)) expected_inter.insert(m);
    else expected_sub.insert(m);
  }

  auto u = a->Union(*b);
  auto i = a->Intersect(*b);
  auto s = a->Subtract(*b);
  ASSERT_TRUE(u.ok() && i.ok() && s.ok());
  EXPECT_EQ(*u->Members(), std::vector<std::string>(expected_union.begin(),
                                                    expected_union.end()));
  EXPECT_EQ(*i->Members(), std::vector<std::string>(expected_inter.begin(),
                                                    expected_inter.end()));
  EXPECT_EQ(*s->Members(), std::vector<std::string>(expected_sub.begin(),
                                                    expected_sub.end()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SetAlgebraTest,
                         ::testing::Values(10, 200, 5000));

TEST(SetAlgebraTest, AlgebraIdentities) {
  MemChunkStore store;
  auto a = FSet::Create(&store, {"x", "y", "z"});
  auto empty = FSet::Create(&store, {});
  ASSERT_TRUE(a.ok() && empty.ok());
  // A ∪ ∅ = A, A ∩ ∅ = ∅, A \ A = ∅  — structural invariance makes these
  // literal root equalities, not just logical ones.
  EXPECT_EQ(a->Union(*empty)->root(), a->root());
  EXPECT_EQ(a->Intersect(*empty)->root(), empty->root());
  EXPECT_EQ(a->Subtract(*a)->root(), empty->root());
  EXPECT_EQ(a->Union(*a)->root(), a->root());
}

}  // namespace
}  // namespace forkbase

// Instance-to-instance sync tests: two ForkBase instances converging through
// SyncPush/SyncPull over a loopback server — the acceptance scenario (100
// versions across 3 branches, delta-exact second sync) plus convergence
// under a seeded FaultSchedule injected into the client transport.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chunk/mem_chunk_store.h"
#include "net/client.h"
#include "net/server.h"
#include "net/sync.h"
#include "net/transport.h"
#include "store/forkbase.h"
#include "util/fault_schedule.h"

namespace forkbase {
namespace {

std::string TestAddress(const std::string& name) {
  return "unix:" + ::testing::TempDir() + name + ".sock";
}

// Commits `n` string versions on (key, branch).
void CommitVersions(ForkBase* db, const std::string& key,
                    const std::string& branch, const std::string& tag,
                    int n) {
  for (int i = 0; i < n; ++i) {
    auto uid = db->Put(key,
                       Value::String(tag + "-" + std::to_string(i) +
                                     std::string(512, 'p')),
                       branch, {"sync-test", tag + std::to_string(i)});
    ASSERT_TRUE(uid.ok()) << uid.status().ToString();
  }
}

// Asserts every branch head of `key` is bit-exact between the instances:
// same uid (content-addressed, so same bytes), same value, same history.
void ExpectConverged(ForkBase* a, ForkBase* b, const std::string& key) {
  auto a_heads = a->Latest(key);
  auto b_heads = b->Latest(key);
  ASSERT_TRUE(a_heads.ok() && b_heads.ok());
  ASSERT_EQ(a_heads->size(), b_heads->size());
  for (size_t i = 0; i < a_heads->size(); ++i) {
    EXPECT_EQ((*a_heads)[i].first, (*b_heads)[i].first);
    EXPECT_EQ((*a_heads)[i].second, (*b_heads)[i].second);
    const std::string& branch = (*a_heads)[i].first;
    auto a_value = a->Get(key, branch);
    auto b_value = b->Get(key, branch);
    ASSERT_TRUE(a_value.ok() && b_value.ok());
    EXPECT_EQ(a_value->ToString(), b_value->ToString());
    auto a_history = a->History(key, branch);
    auto b_history = b->History(key, branch);
    ASSERT_TRUE(a_history.ok() && b_history.ok());
    ASSERT_EQ(a_history->size(), b_history->size());
    for (size_t j = 0; j < a_history->size(); ++j) {
      EXPECT_EQ((*a_history)[j].uid, (*b_history)[j].uid);
    }
    EXPECT_TRUE(b->Verify((*b_heads)[i].second).ok());
  }
}

TEST(SyncTest, TwoInstanceAcceptance) {
  // Instance A: 100 versions across 3 branches of one key.
  ForkBase a(std::make_shared<MemChunkStore>());
  CommitVersions(&a, "doc", "master", "m", 40);
  ASSERT_TRUE(a.Branch("doc", "dev", "master").ok());
  CommitVersions(&a, "doc", "dev", "d", 30);
  ASSERT_TRUE(a.Branch("doc", "exp", "dev").ok());
  CommitVersions(&a, "doc", "exp", "e", 30);

  // Instance B: empty, served.
  ForkBase::Options options;
  options.group_commit = true;
  ForkBase b(std::make_shared<MemChunkStore>(), options);
  auto server = ForkBaseServer::Start(&b, TestAddress("accept"));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Push everything into the empty peer.
  auto client = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(client.ok());
  auto first = SyncPush(&a, &*client);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->branches_considered, 3u);
  EXPECT_EQ(first->branches_updated, 3u);
  EXPECT_EQ(first->branches_conflicted, 0u);
  EXPECT_GE(first->chunks_sent, 100u);  // one FNode per version at least
  EXPECT_EQ(first->chunks_sent, first->remote_new_chunks)
      << "an empty peer lacks everything offered";
  ExpectConverged(&a, &b, "doc");

  // A keeps committing; the second push ships ONLY the new chunks.
  CommitVersions(&a, "doc", "master", "m2", 5);
  auto second = SyncPush(&a, &*client);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->branches_updated, 1u);
  EXPECT_EQ(second->branches_skipped, 2u);
  EXPECT_GT(second->chunks_sent, 0u);
  EXPECT_LT(second->chunks_sent, first->chunks_sent / 4);
  EXPECT_EQ(second->chunks_sent, second->remote_new_chunks)
      << "negotiation shipped something the peer already had";
  ExpectConverged(&a, &b, "doc");

  // An idempotent third push moves nothing.
  auto third = SyncPush(&a, &*client);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->branches_updated, 0u);
  EXPECT_EQ(third->branches_skipped, 3u);
  EXPECT_EQ(third->chunks_sent, 0u);

  // Instance C pulls the same state down from B's server, then pulls a
  // later delta after B advances (via another push from A).
  ForkBase c(std::make_shared<MemChunkStore>());
  auto c_client = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(c_client.ok());
  auto pull = SyncPull(&c, &*c_client);
  ASSERT_TRUE(pull.ok()) << pull.status().ToString();
  EXPECT_EQ(pull->branches_updated, 3u);
  EXPECT_GE(pull->chunks_received, 100u);
  ExpectConverged(&b, &c, "doc");

  CommitVersions(&a, "doc", "dev", "d2", 4);
  ASSERT_TRUE(SyncPush(&a, &*client).ok());
  auto delta_pull = SyncPull(&c, &*c_client);
  ASSERT_TRUE(delta_pull.ok()) << delta_pull.status().ToString();
  EXPECT_EQ(delta_pull->branches_updated, 1u);
  EXPECT_GT(delta_pull->chunks_received, 0u);
  EXPECT_LT(delta_pull->chunks_received, pull->chunks_received / 4);
  EXPECT_EQ(delta_pull->chunks_received, delta_pull->remote_new_chunks)
      << "the server's delta carried chunks this instance already had";
  ExpectConverged(&a, &c, "doc");
  (*server)->Stop();
}

TEST(SyncTest, DivergedBranchConflictsWithoutClobbering) {
  ForkBase a(std::make_shared<MemChunkStore>());
  ForkBase b(std::make_shared<MemChunkStore>());
  CommitVersions(&a, "doc", "master", "base", 3);

  auto server = ForkBaseServer::Start(&b, TestAddress("diverge"));
  ASSERT_TRUE(server.ok());
  auto client = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(SyncPush(&a, &*client).ok());

  // Both sides commit independently: no longer a fast-forward.
  CommitVersions(&a, "doc", "master", "a-side", 2);
  CommitVersions(&b, "doc", "master", "b-side", 2);
  auto b_head = b.Head("doc");
  ASSERT_TRUE(b_head.ok());

  auto push = SyncPush(&a, &*client);
  ASSERT_TRUE(push.ok()) << push.status().ToString();
  EXPECT_EQ(push->branches_conflicted, 1u);
  EXPECT_EQ(push->branches_updated, 0u);
  // B's head is untouched; A's chunks still landed for a future merge.
  EXPECT_EQ(*b.Head("doc"), *b_head);

  auto pull = SyncPull(&a, &*client);
  ASSERT_TRUE(pull.ok());
  EXPECT_EQ(pull->branches_conflicted, 1u);
  ASSERT_TRUE(a.Head("doc").ok());
  (*server)->Stop();
}

// ByteStream decorator driving a FaultSchedule: writes consult kPut, reads
// consult kGet. kTransient fails the call; kShortRead hangs up the socket
// (the peer sees a torn frame / early EOF mid-conversation); kStall models a
// deadline firing on a peer that stopped moving bytes; kDisconnectMidFrame
// lets half a frame escape before the connection drops (the peer sees a torn
// frame, this side an I/O error); kSlowDrip trickles one byte per read.
class FaultyStream : public ByteStream {
 public:
  FaultyStream(std::unique_ptr<ByteStream> inner, FaultSchedule* faults)
      : inner_(std::move(inner)), faults_(faults) {}

  Status WriteAll(Slice bytes) override {
    if (auto fault = faults_->Draw(FaultSchedule::Op::kPut)) {
      switch (fault->kind) {
        case FaultSchedule::Kind::kStall:
          inner_->Close();
          return Status::DeadlineExceeded("injected write stall");
        case FaultSchedule::Kind::kDisconnectMidFrame:
          (void)inner_->WriteAll(Slice(bytes.data(), bytes.size() / 2));
          inner_->Close();
          return Status::IOError("injected disconnect mid-frame");
        default:
          inner_->Close();
          return Status::IOError("injected transport write fault");
      }
    }
    return inner_->WriteAll(bytes);
  }

  StatusOr<size_t> ReadSome(char* buf, size_t cap) override {
    if (auto fault = faults_->Draw(FaultSchedule::Op::kGet)) {
      switch (fault->kind) {
        case FaultSchedule::Kind::kShortRead:
          inner_->Close();
          return static_cast<size_t>(0);  // premature EOF
        case FaultSchedule::Kind::kStall:
          inner_->Close();
          return Status::DeadlineExceeded("injected read stall");
        case FaultSchedule::Kind::kSlowDrip:
          return inner_->ReadSome(buf, std::min<size_t>(cap, 1));
        default:
          inner_->Close();
          return Status::IOError("injected transport read fault");
      }
    }
    return inner_->ReadSome(buf, cap);
  }

  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<ByteStream> inner_;
  FaultSchedule* const faults_;
};

TEST(SyncTest, PushAndPullConvergeUnderTransportFaults) {
  ForkBase a(std::make_shared<MemChunkStore>());
  CommitVersions(&a, "doc", "master", "m", 20);
  ASSERT_TRUE(a.Branch("doc", "dev", "master").ok());
  CommitVersions(&a, "doc", "dev", "d", 10);

  ForkBase::Options options;
  options.group_commit = true;
  ForkBase b(std::make_shared<MemChunkStore>(), options);
  auto server = ForkBaseServer::Start(&b, TestAddress("faulty"));
  ASSERT_TRUE(server.ok());

  // Seeded probabilistic faults on both directions of the client's stream:
  // every run draws the same fault sequence.
  FaultSchedule faults;
  faults.SetProbability(FaultSchedule::Op::kPut, 0.04,
                        {FaultSchedule::Kind::kTransient}, /*seed=*/7);
  faults.SetProbability(FaultSchedule::Op::kGet, 0.04,
                        {FaultSchedule::Kind::kTransient,
                         FaultSchedule::Kind::kShortRead},
                        /*seed=*/9);

  // Each attempt reconnects (a failed stream is dead) and retries the sync
  // from negotiation: the protocol is idempotent, so partial uploads from
  // torn attempts never corrupt the peer, only get completed.
  auto sync_with_retries = [&](ForkBase* db, bool push) -> SyncStats {
    for (int attempt = 0; attempt < 200; ++attempt) {
      auto raw = SocketStream::Connect((*server)->address());
      if (!raw.ok()) continue;
      auto client = ForkBaseClient::Attach(
          std::make_unique<FaultyStream>(std::move(*raw), &faults));
      if (!client.ok()) continue;  // handshake hit a fault
      auto stats = push ? SyncPush(db, &*client) : SyncPull(db, &*client);
      if (stats.ok()) return *stats;
    }
    ADD_FAILURE() << "sync never survived the fault schedule";
    return SyncStats{};
  };

  SyncStats push_stats = sync_with_retries(&a, /*push=*/true);
  EXPECT_EQ(push_stats.branches_conflicted, 0u);
  ExpectConverged(&a, &b, "doc");

  // Pull direction into a third instance through the same faulty pipe.
  ForkBase c(std::make_shared<MemChunkStore>());
  SyncStats pull_stats = sync_with_retries(&c, /*push=*/false);
  EXPECT_EQ(pull_stats.branches_conflicted, 0u);
  ExpectConverged(&a, &c, "doc");

  EXPECT_GT(faults.injected_count(), 0u)
      << "the schedule never fired; the test proved nothing";
  // The server outlived every torn session.
  auto probe = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->Heads().ok());
  (*server)->Stop();
}

// -- SyncWithRetry ------------------------------------------------------------

TEST(SyncTest, SyncWithRetryResumesATornPush) {
  ForkBase a(std::make_shared<MemChunkStore>());
  CommitVersions(&a, "doc", "master", "m", 25);
  ASSERT_TRUE(a.Branch("doc", "dev", "master").ok());
  CommitVersions(&a, "doc", "dev", "d", 10);

  ForkBase::Options options;
  options.group_commit = true;
  ForkBase b(std::make_shared<MemChunkStore>(), options);
  auto server = ForkBaseServer::Start(&b, TestAddress("retry"));
  ASSERT_TRUE(server.ok());

  // One scripted fault: the connection drops mid-frame several writes into
  // the first attempt — HELLO, HEADS, OFFER, BUNDLE_BEGIN take the first
  // four, so write #9 lands inside the bundle-part stream.
  FaultSchedule faults;
  faults.InjectOnce(FaultSchedule::Op::kPut,
                    {FaultSchedule::Kind::kDisconnectMidFrame}, /*skip=*/8);

  StreamFactory factory = [&]() -> StatusOr<std::unique_ptr<ByteStream>> {
    FB_ASSIGN_OR_RETURN(auto raw, SocketStream::Connect((*server)->address()));
    return StatusOr<std::unique_ptr<ByteStream>>(
        std::make_unique<FaultyStream>(std::move(raw), &faults));
  };
  RetryPolicy policy;
  policy.initial_backoff_millis = 1;
  policy.max_backoff_millis = 4;
  SyncOptions sync_options;
  sync_options.part_bytes = 2048;  // many small parts: the cut lands mid-upload
  std::vector<int64_t> sleeps;
  auto report =
      SyncWithRetry(&a, SyncDirection::kPush, factory, policy, sync_options,
                    [&](int64_t millis) { sleeps.push_back(millis); });

  ASSERT_TRUE(report.succeeded) << report.final_status.ToString();
  ASSERT_GE(report.attempts.size(), 2u);
  EXPECT_TRUE(IsRetryableSyncError(report.attempts.front().status));
  EXPECT_EQ(sleeps.size(), report.attempts.size() - 1);
  EXPECT_GT(faults.injected_count(), 0u)
      << "the schedule never fired; the test proved nothing";
  ExpectConverged(&a, &b, "doc");

  // The resumability proof: the torn attempt landed its completed chunks on
  // the server (the streaming importer persists them), so the retry's
  // negotiation shipped strictly fewer.
  const SyncStats& first = report.attempts.front().stats;
  EXPECT_GT(first.chunks_negotiated, 0u);
  EXPECT_GT(report.stats.chunks_negotiated, 0u);
  EXPECT_LT(report.stats.chunks_negotiated, first.chunks_negotiated);
  (*server)->Stop();
}

TEST(SyncTest, SyncWithRetryStopsOnNonRetryableErrors) {
  ForkBase a(std::make_shared<MemChunkStore>());
  int factory_calls = 0;
  StreamFactory factory = [&]() -> StatusOr<std::unique_ptr<ByteStream>> {
    ++factory_calls;
    return Status::InvalidArgument("no such transport");
  };
  auto report = SyncWithRetry(&a, SyncDirection::kPull, factory, RetryPolicy(),
                              SyncOptions(), [](int64_t) {});
  EXPECT_FALSE(report.succeeded);
  EXPECT_EQ(factory_calls, 1);
  EXPECT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.final_status.code(), StatusCode::kInvalidArgument);
}

TEST(SyncTest, SyncWithRetryBackoffIsCappedJitteredAndDeterministic) {
  ForkBase a(std::make_shared<MemChunkStore>());
  StreamFactory refused = []() -> StatusOr<std::unique_ptr<ByteStream>> {
    return Status::IOError("connection refused");
  };
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_millis = 8;
  policy.max_backoff_millis = 20;
  policy.jitter_seed = 77;

  auto run = [&]() {
    std::vector<int64_t> sleeps;
    auto report =
        SyncWithRetry(&a, SyncDirection::kPush, refused, policy, SyncOptions(),
                      [&](int64_t millis) { sleeps.push_back(millis); });
    EXPECT_FALSE(report.succeeded);
    EXPECT_EQ(report.attempts.size(), 5u);
    EXPECT_EQ(report.final_status.code(), StatusCode::kIOError);
    // Every non-final attempt records the backoff it then slept.
    for (size_t i = 0; i + 1 < report.attempts.size(); ++i) {
      EXPECT_EQ(report.attempts[i].backoff_millis, sleeps[i]);
    }
    EXPECT_EQ(report.attempts.back().backoff_millis, 0);
    return sleeps;
  };

  const std::vector<int64_t> first = run();
  ASSERT_EQ(first.size(), 4u);
  // Exponential envelope 8, 16, 20, 20 (capped), each jittered down into
  // [envelope/2, envelope] — never past the cap.
  const int64_t envelope[] = {8, 16, 20, 20};
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_GE(first[i], envelope[i] / 2);
    EXPECT_LE(first[i], envelope[i]);
  }
  // The jitter is seeded: a rerun replays the exact same sleeps.
  EXPECT_EQ(run(), first);
}

}  // namespace
}  // namespace forkbase

// TieredChunkStore behavior: policy semantics (write-through vs write-back),
// batch-grouped promotion and demotion, cross-tier batch splitting (sync and
// async), error-vs-absent discipline on the cold tier, and the full ForkBase
// workload suite (put, scan, diff, GC, group commit) running end-to-end on a
// tiered persistent stack — including recovery of a lost hot tier from the
// cold backend.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "chunk/file_chunk_store.h"
#include "chunk/mem_chunk_store.h"
#include "chunk/remote_chunk_store.h"
#include "chunk/tiered_chunk_store.h"
#include "store/forkbase.h"
#include "store/gc.h"
#include "util/random.h"

namespace forkbase {
namespace {

std::vector<Chunk> MakeChunks(size_t n, uint64_t seed, size_t bytes = 64) {
  Rng rng(seed);
  std::vector<Chunk> chunks;
  chunks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    chunks.push_back(Chunk::Make(ChunkType::kCell, rng.NextBytes(bytes)));
  }
  return chunks;
}

/// In-memory tiered harness: hot Mem, cold Remote-over-Mem with a shared
/// fault schedule. The raw tier pointers stay visible for assertions.
struct TieredHarness {
  explicit TieredHarness(TieredChunkStore::Options options = {},
                         RemoteChunkStore::Options remote_options = {}) {
    hot = std::make_shared<MemChunkStore>();
    cold_backend = std::make_shared<MemChunkStore>();
    faults = std::make_shared<FaultSchedule>();
    remote_options.faults = faults;
    if (remote_options.connections == 0) remote_options.connections = 1;
    cold = std::make_shared<RemoteChunkStore>(cold_backend, remote_options);
    tiered = std::make_shared<TieredChunkStore>(hot, cold, options);
  }

  std::shared_ptr<MemChunkStore> hot;
  std::shared_ptr<MemChunkStore> cold_backend;
  std::shared_ptr<FaultSchedule> faults;
  std::shared_ptr<RemoteChunkStore> cold;
  std::shared_ptr<TieredChunkStore> tiered;
};

TEST(TieredStoreTest, WriteThroughLandsInBothTiers) {
  TieredHarness h;
  auto chunks = MakeChunks(8, 1);
  ASSERT_TRUE(h.tiered->PutMany(chunks).ok());
  for (const auto& chunk : chunks) {
    EXPECT_TRUE(h.hot->Contains(chunk.hash()));
    EXPECT_TRUE(h.cold_backend->Contains(chunk.hash()));
  }
  EXPECT_EQ(h.tiered->tier_stats().dirty_pending, 0u);
}

TEST(TieredStoreTest, WriteBackDefersColdUntilFlush) {
  TieredChunkStore::Options options;
  options.policy = TierPolicy::kWriteBack;
  options.background_demotion = false;
  TieredHarness h(options);
  auto chunks = MakeChunks(10, 2);
  ASSERT_TRUE(h.tiered->PutMany(chunks).ok());
  for (const auto& chunk : chunks) {
    EXPECT_TRUE(h.hot->Contains(chunk.hash()));
    EXPECT_FALSE(h.cold_backend->Contains(chunk.hash()));
  }
  EXPECT_EQ(h.tiered->tier_stats().dirty_pending, chunks.size());

  ASSERT_TRUE(h.tiered->FlushColdTier().ok());
  for (const auto& chunk : chunks) {
    EXPECT_TRUE(h.cold_backend->Contains(chunk.hash()));
  }
  auto stats = h.tiered->tier_stats();
  EXPECT_EQ(stats.dirty_pending, 0u);
  EXPECT_EQ(stats.demotions, chunks.size());
}

TEST(TieredStoreTest, DemotionGroupsBatches) {
  // 10 dirty chunks with demote_batch = 4 → 3 cold PutMany round trips, not
  // 10 scalar puts. The remote's batch-latency accounting proves grouping:
  // each round trip draws one kPutBatch fault decision.
  TieredChunkStore::Options options;
  options.policy = TierPolicy::kWriteBack;
  options.background_demotion = false;
  options.demote_batch = 4;
  TieredHarness h(options);
  auto chunks = MakeChunks(10, 3);
  ASSERT_TRUE(h.tiered->PutMany(chunks).ok());
  // Script a fault for the 4th batch put — it must never fire in a 3-batch
  // drain, proving the drain really grouped 10 chunks into 3 round trips.
  h.faults->InjectOnce(FaultSchedule::Op::kPutBatch,
                       {FaultSchedule::Kind::kTransient}, /*skip=*/3);
  ASSERT_TRUE(h.tiered->FlushColdTier().ok());
  EXPECT_EQ(h.faults->injected_count(), 0u);
  EXPECT_EQ(h.tiered->tier_stats().demotions, chunks.size());
}

TEST(TieredStoreTest, WatermarkTriggersBackgroundDemotion) {
  TieredChunkStore::Options options;
  options.policy = TierPolicy::kWriteBack;
  options.background_demotion = true;
  options.write_back_watermark = 8;
  TieredHarness h(options);
  auto chunks = MakeChunks(24, 4);
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(h.tiered->Put(chunk).ok());
  }
  // FlushColdTier waits out the background drain and demotes the remainder.
  ASSERT_TRUE(h.tiered->FlushColdTier().ok());
  auto stats = h.tiered->tier_stats();
  EXPECT_EQ(stats.demotions, chunks.size());
  EXPECT_EQ(stats.dirty_pending, 0u);
  for (const auto& chunk : chunks) {
    EXPECT_TRUE(h.cold_backend->Contains(chunk.hash()));
  }
}

TEST(TieredStoreTest, DestructorFlushesWriteBack) {
  auto hot = std::make_shared<MemChunkStore>();
  auto cold = std::make_shared<MemChunkStore>();
  auto chunks = MakeChunks(5, 5);
  {
    TieredChunkStore::Options options;
    options.policy = TierPolicy::kWriteBack;
    options.background_demotion = false;
    TieredChunkStore tiered(hot, cold, options);
    ASSERT_TRUE(tiered.PutMany(chunks).ok());
    EXPECT_FALSE(cold->Contains(chunks[0].hash()));
  }
  for (const auto& chunk : chunks) {
    EXPECT_TRUE(cold->Contains(chunk.hash()));
  }
}

TEST(TieredStoreTest, ColdHitsAreServedAndPromoted) {
  TieredHarness h;
  auto chunks = MakeChunks(6, 6);
  // Seed the cold backend directly — the "reopened with a fresh hot tier"
  // state.
  ASSERT_TRUE(h.cold_backend->PutMany(chunks).ok());
  for (const auto& chunk : chunks) {
    ASSERT_FALSE(h.hot->Contains(chunk.hash()));
    auto got = h.tiered->Get(chunk.hash());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->bytes().ToString(), chunk.bytes().ToString());
    // Promoted: the next read is local.
    EXPECT_TRUE(h.hot->Contains(chunk.hash()));
  }
  auto stats = h.tiered->tier_stats();
  EXPECT_EQ(stats.cold_hits, chunks.size());
  EXPECT_EQ(stats.promotions, chunks.size());
  // Re-read everything: all hot now.
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(h.tiered->Get(chunk.hash()).ok());
  }
  EXPECT_EQ(h.tiered->tier_stats().hot_hits, chunks.size());
}

TEST(TieredStoreTest, PromotionCanBeDisabled) {
  TieredChunkStore::Options options;
  options.promote_on_read = false;
  TieredHarness h(options);
  auto chunks = MakeChunks(3, 7);
  ASSERT_TRUE(h.cold_backend->PutMany(chunks).ok());
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(h.tiered->Get(chunk.hash()).ok());
    EXPECT_FALSE(h.hot->Contains(chunk.hash()));
  }
  EXPECT_EQ(h.tiered->tier_stats().promotions, 0u);
}

TEST(TieredStoreTest, GetManySplitsAcrossTiersAndPromotesInOneBatch) {
  TieredHarness h;
  auto hot_chunks = MakeChunks(5, 8);
  auto cold_chunks = MakeChunks(5, 9);
  ASSERT_TRUE(h.hot->PutMany(hot_chunks).ok());
  ASSERT_TRUE(h.cold_backend->PutMany(cold_chunks).ok());

  std::vector<Hash256> ids;
  for (size_t i = 0; i < 5; ++i) {
    ids.push_back(hot_chunks[i].hash());
    ids.push_back(cold_chunks[i].hash());
  }
  const Hash256 absent = Sha256(Slice("absent-tiered"));
  ids.push_back(absent);

  auto slots = h.tiered->GetMany(ids);
  ASSERT_EQ(slots.size(), ids.size());
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    ASSERT_TRUE(slots[i].ok()) << i;
    EXPECT_EQ(slots[i]->hash(), ids[i]);
  }
  EXPECT_TRUE(slots.back().status().IsNotFound());

  auto stats = h.tiered->tier_stats();
  EXPECT_EQ(stats.hot_hits, 5u);
  EXPECT_EQ(stats.cold_hits, 5u);
  EXPECT_EQ(stats.promotions, 5u);
  for (const auto& chunk : cold_chunks) {
    EXPECT_TRUE(h.hot->Contains(chunk.hash()));
  }
}

TEST(TieredStoreTest, AsyncGetManyMatchesSyncAcrossTiers) {
  RemoteChunkStore::Options remote_options;
  remote_options.batch_latency_us = 200;  // real overlap window
  TieredHarness h({}, remote_options);
  auto hot_chunks = MakeChunks(8, 10);
  auto cold_chunks = MakeChunks(8, 11);
  ASSERT_TRUE(h.hot->PutMany(hot_chunks).ok());
  ASSERT_TRUE(h.cold_backend->PutMany(cold_chunks).ok());
  ASSERT_TRUE(h.tiered->SupportsAsyncGet());

  std::vector<Hash256> ids;
  for (size_t i = 0; i < 8; ++i) {
    ids.push_back(cold_chunks[i].hash());
    ids.push_back(hot_chunks[i].hash());
  }
  ids.push_back(Sha256(Slice("absent-async")));

  auto handle = h.tiered->GetManyAsync(ids);
  ASSERT_TRUE(handle.valid());
  auto async_slots = handle.Take();
  // Promotion already ran at Take; a sync read now is fully hot.
  auto sync_slots = h.tiered->GetMany(ids);
  ASSERT_EQ(async_slots.size(), sync_slots.size());
  for (size_t i = 0; i < sync_slots.size(); ++i) {
    EXPECT_EQ(async_slots[i].ok(), sync_slots[i].ok()) << i;
    if (async_slots[i].ok()) {
      EXPECT_EQ(async_slots[i]->bytes().ToString(),
                sync_slots[i]->bytes().ToString());
    }
  }
  for (const auto& chunk : cold_chunks) {
    EXPECT_TRUE(h.hot->Contains(chunk.hash()));
  }
}

TEST(TieredStoreTest, DuplicateColdIdsInOneBatchPromoteOnce) {
  TieredHarness h;
  auto chunk = MakeChunks(1, 22)[0];
  ASSERT_TRUE(h.cold_backend->Put(chunk).ok());
  std::vector<Hash256> ids{chunk.hash(), chunk.hash(), chunk.hash()};
  auto slots = h.tiered->GetMany(ids);
  ASSERT_EQ(slots.size(), 3u);
  for (const auto& slot : slots) ASSERT_TRUE(slot.ok());
  auto stats = h.tiered->tier_stats();
  EXPECT_EQ(stats.cold_hits, 3u);   // every slot was served cold
  EXPECT_EQ(stats.promotions, 1u);  // but the chunk promoted once
}

TEST(TieredStoreTest, AsyncHotOverSyncColdDefersColdReadToTake) {
  // Async hot tier, synchronous cold store: GetManyAsync must not execute
  // the cold read at issue time (that would block the speculating caller);
  // the cold read runs at Take, and results still match the sync path.
  auto hot_backend = std::make_shared<MemChunkStore>();
  RemoteChunkStore::Options hot_options;
  hot_options.connections = 1;  // async hot
  auto hot = std::make_shared<RemoteChunkStore>(hot_backend, hot_options);
  auto cold = std::make_shared<MemChunkStore>();  // synchronous cold
  TieredChunkStore tiered(hot, cold);
  ASSERT_TRUE(tiered.SupportsAsyncGet());

  auto hot_chunks = MakeChunks(4, 20);
  auto cold_chunks = MakeChunks(4, 21);
  ASSERT_TRUE(hot_backend->PutMany(hot_chunks).ok());
  ASSERT_TRUE(cold->PutMany(cold_chunks).ok());
  std::vector<Hash256> ids;
  for (size_t i = 0; i < 4; ++i) {
    ids.push_back(hot_chunks[i].hash());
    ids.push_back(cold_chunks[i].hash());
  }
  auto async_slots = tiered.GetManyAsync(ids).Take();
  auto sync_slots = tiered.GetMany(ids);
  ASSERT_EQ(async_slots.size(), sync_slots.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(async_slots[i].ok()) << i;
    EXPECT_EQ(async_slots[i]->bytes().ToString(),
              sync_slots[i]->bytes().ToString());
  }
}

TEST(TieredStoreTest, ColdTransientErrorSurfacesAsErrorNotNotFound) {
  TieredHarness h;
  auto chunks = MakeChunks(4, 12);
  ASSERT_TRUE(h.cold_backend->PutMany(chunks).ok());

  std::vector<Hash256> ids;
  for (const auto& chunk : chunks) ids.push_back(chunk.hash());

  h.faults->InjectOnce(FaultSchedule::Op::kGetBatch,
                       {FaultSchedule::Kind::kTransient});
  auto slots = h.tiered->GetMany(ids);
  ASSERT_EQ(slots.size(), ids.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    ASSERT_FALSE(slots[i].ok()) << i;
    // The contract under audit: an unreachable cold tier is an IOError in
    // the slot, never kNotFound — and nothing was promoted from the failed
    // fetch.
    EXPECT_EQ(slots[i].status().code(), StatusCode::kIOError) << i;
    EXPECT_FALSE(h.hot->Contains(ids[i]));
  }
  EXPECT_EQ(h.tiered->tier_stats().promotions, 0u);

  // Fault cleared: the retry succeeds — proof the failure was never
  // remembered anywhere in the stack.
  auto retry = h.tiered->GetMany(ids);
  for (size_t i = 0; i < retry.size(); ++i) {
    ASSERT_TRUE(retry[i].ok()) << i;
  }
}

TEST(TieredStoreTest, FailedDemotionKeepsChunksDirtyAndReadable) {
  TieredChunkStore::Options options;
  options.policy = TierPolicy::kWriteBack;
  options.background_demotion = false;
  options.demote_batch = 4;
  TieredHarness h(options);
  auto chunks = MakeChunks(12, 13);
  ASSERT_TRUE(h.tiered->PutMany(chunks).ok());

  // Second demotion round trip fails: batch 1 lands, batches 2-3 stay
  // dirty.
  h.faults->InjectOnce(FaultSchedule::Op::kPutBatch,
                       {FaultSchedule::Kind::kTransient}, /*skip=*/1);
  Status flush = h.tiered->FlushColdTier();
  ASSERT_FALSE(flush.ok());
  EXPECT_EQ(flush.code(), StatusCode::kIOError);
  auto stats = h.tiered->tier_stats();
  EXPECT_EQ(stats.demotions, 4u);
  EXPECT_EQ(stats.dirty_pending, 8u);

  // Every chunk still reads back through the tiered store.
  for (const auto& chunk : chunks) {
    auto got = h.tiered->Get(chunk.hash());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->bytes().ToString(), chunk.bytes().ToString());
  }

  // The next flush retries the remainder.
  ASSERT_TRUE(h.tiered->FlushColdTier().ok());
  EXPECT_EQ(h.tiered->tier_stats().dirty_pending, 0u);
  for (const auto& chunk : chunks) {
    EXPECT_TRUE(h.cold_backend->Contains(chunk.hash()));
  }
}

TEST(TieredStoreTest, HotCopyVanishingAfterProbeFallsBackToCold) {
  // The hot tier loses a chunk after it was resident (external cleanup, or
  // a future evicting hot tier). Every read path — scalar, batched fast
  // path, split batch, async — must heal from the cold tier instead of
  // reporting kNotFound for a chunk the store still holds.
  TieredHarness h;
  auto chunks = MakeChunks(6, 30);
  ASSERT_TRUE(h.tiered->PutMany(chunks).ok());  // write-through: both tiers

  // Scalar.
  ASSERT_TRUE(h.hot->Erase(std::vector<Hash256>{chunks[0].hash()}).ok());
  auto scalar = h.tiered->Get(chunks[0].hash());
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(scalar->bytes().ToString(), chunks[0].bytes().ToString());

  // Batched, fully-hot fast path (every id still probes as hot-resident
  // via the index... here Mem's erase drops the index too, so this id
  // splits cold; erase between Split and the hot read is the same slot
  // shape as a kNotFound hot slot, which MergeTiers/ResolveHotMisses
  // handle identically — exercise both entry points).
  ASSERT_TRUE(h.hot->Erase(std::vector<Hash256>{chunks[1].hash()}).ok());
  std::vector<Hash256> ids;
  for (const auto& chunk : chunks) ids.push_back(chunk.hash());
  auto slots = h.tiered->GetMany(ids);
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(slots[i].ok()) << i;
    EXPECT_EQ(slots[i]->bytes().ToString(), chunks[i].bytes().ToString());
  }

  // Async.
  ASSERT_TRUE(h.hot->Erase(std::vector<Hash256>{chunks[2].hash()}).ok());
  auto async_slots = h.tiered->GetManyAsync(ids).Take();
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(async_slots[i].ok()) << i;
  }
}

TEST(TieredStoreTest, DrainCompletionChainsIntoBacklogWithoutNewPuts) {
  // Writes that outrun an in-flight drain must still demote once that
  // drain completes — the completion re-checks the watermark itself; no
  // further Put or explicit flush is required. A slow cold tier holds the
  // first drain open while the backlog builds.
  TieredChunkStore::Options options;
  options.policy = TierPolicy::kWriteBack;
  options.background_demotion = true;
  options.write_back_watermark = 4;
  options.demote_batch = 4;
  RemoteChunkStore::Options remote_options;
  remote_options.batch_latency_us = 3000;  // each cold round trip is slow
  TieredHarness h(options, remote_options);
  auto chunks = MakeChunks(16, 31);
  // First batch crosses the watermark and opens the drain; the rest lands
  // while that drain is stuck in the slow cold round trip, so MarkDirty
  // sees a drain in flight and schedules nothing.
  ASSERT_TRUE(
      h.tiered->PutMany(std::span<const Chunk>(chunks.data(), 4)).ok());
  for (size_t i = 4; i < chunks.size(); ++i) {
    ASSERT_TRUE(h.tiered->Put(chunks[i]).ok());
  }
  // No flush, no further puts: the drain-completion chain alone must push
  // the backlog down below one watermark's worth of stragglers.
  size_t in_cold = 0;
  for (int spin = 0; spin < 600; ++spin) {
    in_cold = 0;
    for (const auto& chunk : chunks) {
      if (h.cold_backend->Contains(chunk.hash())) ++in_cold;
    }
    if (in_cold + options.write_back_watermark > chunks.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(in_cold + options.write_back_watermark, chunks.size())
      << "backlog never demoted without a trigger (only " << in_cold
      << " of " << chunks.size() << " reached the cold tier)";
}

TEST(TieredStoreTest, HotRetryErrorSurfacesInsteadOfColdNotFound) {
  // Cold says kNotFound, and the hot re-probe then fails with an I/O error:
  // the read must report the error ("unreachable"), never cold's "absent".
  auto hot_backend = std::make_shared<MemChunkStore>();
  auto hot_faults = std::make_shared<FaultSchedule>();
  RemoteChunkStore::Options hot_options;
  hot_options.faults = hot_faults;
  auto hot = std::make_shared<RemoteChunkStore>(hot_backend, hot_options);
  auto cold = std::make_shared<MemChunkStore>();
  TieredChunkStore tiered(hot, cold);
  const Hash256 id = Sha256(Slice("nowhere"));

  // Scalar: draw 1 = the initial hot read (clean), draw 2 = the re-probe
  // after cold's kNotFound (faulted).
  hot_faults->InjectOnce(FaultSchedule::Op::kGet,
                         {FaultSchedule::Kind::kTransient}, /*skip=*/1);
  auto scalar = tiered.Get(id);
  ASSERT_FALSE(scalar.ok());
  EXPECT_EQ(scalar.status().code(), StatusCode::kIOError);

  // Batch path: the id splits cold (hot Contains false), so the first kGet
  // draw is the re-probe itself.
  hot_faults->Clear();
  hot_faults->InjectOnce(FaultSchedule::Op::kGet,
                         {FaultSchedule::Kind::kTransient});
  auto slots = tiered.GetMany(std::vector<Hash256>{id});
  ASSERT_EQ(slots.size(), 1u);
  ASSERT_FALSE(slots[0].ok());
  EXPECT_EQ(slots[0].status().code(), StatusCode::kIOError);

  // With no fault armed, a genuinely absent id is still a clean kNotFound.
  auto clean = tiered.Get(id);
  EXPECT_TRUE(clean.status().IsNotFound());
}

TEST(TieredStoreTest, OverlappingFaultScriptsFireOnConsecutiveOps) {
  // Two scripts armed together (skip=0 and skip=1) must fault the next two
  // round trips — each script counts every Draw, including the one another
  // script fires on.
  auto schedule = std::make_shared<FaultSchedule>();
  schedule->InjectOnce(FaultSchedule::Op::kGet,
                       {FaultSchedule::Kind::kTransient});
  schedule->InjectOnce(FaultSchedule::Op::kGet,
                       {FaultSchedule::Kind::kTimeout}, /*skip=*/1);
  EXPECT_TRUE(schedule->Draw(FaultSchedule::Op::kGet).has_value());
  EXPECT_TRUE(schedule->Draw(FaultSchedule::Op::kGet).has_value());
  EXPECT_FALSE(schedule->Draw(FaultSchedule::Op::kGet).has_value());
  EXPECT_EQ(schedule->injected_count(), 2u);
}

TEST(TieredStoreTest, ForEachCoversUnionOfTiers) {
  TieredHarness h;
  auto hot_only = MakeChunks(4, 14);
  auto cold_only = MakeChunks(4, 15);
  auto both = MakeChunks(4, 16);
  ASSERT_TRUE(h.hot->PutMany(hot_only).ok());
  ASSERT_TRUE(h.cold_backend->PutMany(cold_only).ok());
  ASSERT_TRUE(h.tiered->PutMany(both).ok());  // write-through: both tiers

  size_t visited = 0;
  std::unordered_set<Hash256, Hash256Hasher> seen;
  h.tiered->ForEach([&](const Hash256& id, const Chunk& chunk) {
    EXPECT_EQ(chunk.hash(), id);
    EXPECT_TRUE(seen.insert(id).second) << "visited twice";
    ++visited;
  });
  EXPECT_EQ(visited, 12u);
}

// ---- bounded hot tier: budget, eviction, pinning --------------------------

TEST(TieredStoreTest, BudgetEvictsCleanLruChunksAndKeepsDataReadable) {
  TieredChunkStore::Options options;  // write-through: everything clean
  options.hot_bytes_budget = 1200;
  options.evict_batch = 4;
  TieredHarness h(options);
  auto chunks = MakeChunks(64, 40);  // ~65 bytes each: ~4x the budget
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(h.tiered->Put(chunk).ok());
  }
  // The hot tier (a MemChunkStore: space_used is exact and erase frees
  // immediately) never ends a put over budget.
  EXPECT_LE(h.hot->space_used(), options.hot_bytes_budget);
  auto stats = h.tiered->tier_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.hot_bytes, options.hot_bytes_budget);
  EXPECT_EQ(stats.pinned_dirty_bytes, 0u);  // write-through pins nothing
  // Every chunk still reads back bit-exact — evicted ones from the cold
  // tier (and re-promote as they are touched).
  for (const auto& chunk : chunks) {
    auto got = h.tiered->Get(chunk.hash());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->bytes().ToString(), chunk.bytes().ToString());
  }
  EXPECT_GT(h.tiered->tier_stats().cold_hits, 0u);  // eviction really bit
}

TEST(TieredStoreTest, DirtyChunksArePinnedUntilDemotionLands) {
  TieredChunkStore::Options options;
  options.policy = TierPolicy::kWriteBack;
  options.background_demotion = false;
  options.hot_bytes_budget = 1000;
  TieredHarness h(options);
  auto chunks = MakeChunks(30, 41);  // ~2x the budget, all dirty
  ASSERT_TRUE(h.tiered->PutMany(chunks).ok());

  // Over budget, but every byte is pinned dirty: the evictor must not touch
  // a chunk the cold tier does not hold yet.
  auto stats = h.tiered->tier_stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.hot_bytes, options.hot_bytes_budget);
  EXPECT_EQ(stats.pinned_dirty_bytes, stats.hot_bytes);
  for (const auto& chunk : chunks) {
    EXPECT_TRUE(h.hot->Contains(chunk.hash()));
    EXPECT_FALSE(h.cold_backend->Contains(chunk.hash()));
  }

  // Demotion unpins; the drain's completion runs the evictor itself.
  ASSERT_TRUE(h.tiered->FlushColdTier().ok());
  stats = h.tiered->tier_stats();
  EXPECT_EQ(stats.pinned_dirty_bytes, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(h.hot->space_used(), options.hot_bytes_budget);
  for (const auto& chunk : chunks) {
    EXPECT_TRUE(h.cold_backend->Contains(chunk.hash()));
    auto got = h.tiered->Get(chunk.hash());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->bytes().ToString(), chunk.bytes().ToString());
  }
}

TEST(TieredStoreTest, ExactUnionChunkCount) {
  // The tiers hold disjoint sets: 5 hot-only (undemoted write-back) + 3
  // cold-only (history). The old stats reported max(5, 3) = 5 — a
  // documented lower bound; membership tracking makes the union exact.
  TieredChunkStore::Options options;
  options.policy = TierPolicy::kWriteBack;
  options.background_demotion = false;
  TieredHarness h(options);
  auto hot_only = MakeChunks(5, 42);
  auto cold_only = MakeChunks(3, 43);
  ASSERT_TRUE(h.tiered->PutMany(hot_only).ok());
  ASSERT_TRUE(h.cold_backend->PutMany(cold_only).ok());
  EXPECT_EQ(h.tiered->stats().chunk_count, 8u);
  // After the flush both tiers hold the 5; the union is still 8.
  ASSERT_TRUE(h.tiered->FlushColdTier().ok());
  EXPECT_EQ(h.tiered->stats().chunk_count, 8u);
}

TEST(TieredStoreTest, EraseClearsBothTiersAndThePipeline) {
  TieredChunkStore::Options options;
  options.policy = TierPolicy::kWriteBack;
  options.background_demotion = false;
  TieredHarness h(options);
  auto chunks = MakeChunks(6, 44);
  ASSERT_TRUE(h.tiered->PutMany(chunks).ok());
  ASSERT_TRUE(h.tiered->FlushColdTier().ok());  // resident in both tiers
  ASSERT_TRUE(h.tiered->Put(chunks[0]).ok());   // no-op re-put

  std::vector<Hash256> victims{chunks[0].hash(), chunks[1].hash()};
  ASSERT_TRUE(h.tiered->SupportsErase());
  ASSERT_TRUE(h.tiered->Erase(victims).ok());
  for (const auto& id : victims) {
    EXPECT_FALSE(h.tiered->Contains(id));
    EXPECT_TRUE(h.tiered->Get(id).status().IsNotFound());
  }
  EXPECT_EQ(h.tiered->stats().chunk_count, 4u);
  // An erased id must not resurface via a later drain.
  ASSERT_TRUE(h.tiered->FlushColdTier().ok());
  for (const auto& id : victims) EXPECT_FALSE(h.cold_backend->Contains(id));
}

TEST(TieredStoreTest, GcEvictsDirtyGarbageWithoutDemotion) {
  // Evict-over-demote: garbage that is still dirty (never demoted) must be
  // dropped from the hot tier directly — paying a cold round trip to write
  // bytes we are about to delete would be absurd — and its write-back
  // promise must be cancelled in the manifest. Garbage that already lives
  // cold still needs the cold erase.
  const std::string dir = ::testing::TempDir() + "/fb_gc_evict_manifest";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto manifest_or = DirtyManifest::Open(dir);
  ASSERT_TRUE(manifest_or.ok());
  std::shared_ptr<DirtyManifest> manifest(std::move(*manifest_or));
  TieredChunkStore::Options options;
  options.policy = TierPolicy::kWriteBack;
  options.background_demotion = false;
  options.dirty_manifest = manifest;
  TieredHarness h(options);

  auto demoted = MakeChunks(2, 45);      // cold-resident garbage
  auto dirty = MakeChunks(4, 46);        // hot-only, never-flushed garbage
  ASSERT_TRUE(h.tiered->PutMany(demoted).ok());
  ASSERT_TRUE(h.tiered->FlushColdTier().ok());
  ASSERT_TRUE(h.tiered->PutMany(dirty).ok());
  ASSERT_EQ(h.tiered->tier_stats().dirty_pending, dirty.size());
  ASSERT_EQ(manifest->dirty_count(), dirty.size());

  // The cold round-trip counter proves "no demotion": any dirty chunk
  // taking the demote path would bump the backend's put_calls.
  const uint64_t cold_puts_before = h.cold_backend->stats().put_calls;
  std::vector<Hash256> victims;
  for (const auto& c : dirty) victims.push_back(c.hash());
  for (const auto& c : demoted) victims.push_back(c.hash());
  ASSERT_TRUE(h.tiered->Erase(victims).ok());

  EXPECT_EQ(h.cold_backend->stats().put_calls, cold_puts_before)
      << "dirty garbage must be evicted, never demoted";
  EXPECT_EQ(h.tiered->tier_stats().hot_only_erases, dirty.size());
  EXPECT_EQ(h.tiered->tier_stats().dirty_pending, 0u);
  EXPECT_EQ(manifest->dirty_count(), 0u)
      << "erased dirty chunks must be unpinned from the manifest";
  for (const auto& id : victims) {
    EXPECT_FALSE(h.tiered->Contains(id));
    EXPECT_FALSE(h.cold_backend->Contains(id));
  }
  // A later drain must not resurrect anything.
  ASSERT_TRUE(h.tiered->FlushColdTier().ok());
  for (const auto& id : victims) EXPECT_FALSE(h.cold_backend->Contains(id));
  std::filesystem::remove_all(dir);
}

TEST(TieredStoreTest, GcSweepSurvivesTransientColdFaults) {
  // A sweep whose mark phase has to read evicted chunks from a flaky cold
  // tier must fail cleanly — nothing erased on a failed mark, every head
  // still verifiable — and succeed on retry once the fault passes.
  TieredChunkStore::Options options;
  options.policy = TierPolicy::kWriteBack;
  options.background_demotion = false;
  TieredHarness h(options);
  ForkBase db(h.tiered);
  ASSERT_TRUE(db.PutMap("keep", {{"a", "1"}, {"b", "2"}}).ok());
  ASSERT_TRUE(db.PutMap("drop", {{"doomed", "payload"}}).ok());
  ASSERT_TRUE(h.tiered->FlushColdTier().ok());
  ASSERT_TRUE(db.DeleteBranch("drop", "master").ok());
  // Evict the hot copies so the mark is forced through the cold tier.
  std::vector<Hash256> all_hot;
  h.hot->ForEachId([&](const Hash256& id, uint64_t) { all_hot.push_back(id); });
  ASSERT_TRUE(h.hot->Erase(all_hot).ok());

  h.faults->InjectOnce(FaultSchedule::Op::kGetBatch,
                       {FaultSchedule::Kind::kTransient});
  const uint64_t cold_before = h.cold_backend->stats().chunk_count;
  auto failed = SweepInPlace(&db);
  EXPECT_FALSE(failed.ok()) << "mark read through a faulted cold tier";
  // A failed mark must not have erased anything.
  EXPECT_EQ(h.cold_backend->stats().chunk_count, cold_before);
  EXPECT_TRUE(db.Verify(*db.Head("keep")).ok());

  // Fault drained: the retry reclaims the garbage and keeps the survivors.
  auto stats = SweepInPlace(&db);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->swept_chunks, 0u);
  EXPECT_LT(h.cold_backend->stats().chunk_count, cold_before);
  EXPECT_TRUE(db.Verify(*db.Head("keep")).ok());
  EXPECT_EQ(**db.GetMap("keep")->Get("b"), "2");
}

// ---- persistent dirty manifest --------------------------------------------

class DirtyManifestTieredTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hot_dir_ = ::testing::TempDir() + "/fb_manifest_hot";
    cold_dir_ = ::testing::TempDir() + "/fb_manifest_cold";
    std::filesystem::remove_all(hot_dir_);
    std::filesystem::remove_all(cold_dir_);
    faults_ = std::make_shared<FaultSchedule>();
  }
  void TearDown() override {
    std::filesystem::remove_all(hot_dir_);
    std::filesystem::remove_all(cold_dir_);
  }

  /// Persistent write-back stack: File hot (+ manifest beside it), File
  /// cold behind a faultable Remote.
  std::shared_ptr<TieredChunkStore> OpenStack(
      TieredChunkStore::Options options = {}) {
    auto hot_or = FileChunkStore::Open(hot_dir_);
    EXPECT_TRUE(hot_or.ok());
    auto cold_or = FileChunkStore::Open(cold_dir_);
    EXPECT_TRUE(cold_or.ok());
    RemoteChunkStore::Options remote_options;
    remote_options.faults = faults_;
    auto cold = std::make_shared<RemoteChunkStore>(
        std::shared_ptr<ChunkStore>(std::move(*cold_or)), remote_options);
    auto manifest_or = DirtyManifest::Open(hot_dir_);
    EXPECT_TRUE(manifest_or.ok());
    options.policy = TierPolicy::kWriteBack;
    options.background_demotion = false;
    options.dirty_manifest = std::move(*manifest_or);
    return std::make_shared<TieredChunkStore>(
        std::shared_ptr<ChunkStore>(std::move(*hot_or)), std::move(cold),
        options);
  }

  std::string hot_dir_;
  std::string cold_dir_;
  std::shared_ptr<FaultSchedule> faults_;
};

TEST_F(DirtyManifestTieredTest, ReplayResumesDemotionAfterCrash) {
  auto chunks = MakeChunks(40, 50);
  {
    auto tiered = OpenStack();
    ASSERT_TRUE(tiered->PutMany(chunks).ok());
    EXPECT_EQ(tiered->manifest()->dirty_count(), chunks.size());
    // "Kill" the process before anything demotes: every cold write fails
    // from here on, including the destructor's best-effort flush.
    faults_->SetProbability(FaultSchedule::Op::kPutBatch, 1.0,
                            {FaultSchedule::Kind::kTransient});
  }
  {
    // Nothing demoted before the "kill": the cold backend is empty.
    auto cold_or = FileChunkStore::Open(cold_dir_);
    ASSERT_TRUE(cold_or.ok());
    for (const auto& chunk : chunks) {
      ASSERT_FALSE((*cold_or)->Contains(chunk.hash()));
    }
  }
  faults_->Clear();

  // Reopen: the manifest replays the full dirty set; demotion resumes and
  // every previously-dirty chunk reaches the cold tier.
  auto tiered = OpenStack();
  EXPECT_EQ(tiered->tier_stats().dirty_pending, chunks.size());
  ASSERT_TRUE(tiered->FlushColdTier().ok());
  EXPECT_EQ(tiered->tier_stats().demotions, chunks.size());
  EXPECT_EQ(tiered->manifest()->dirty_count(), 0u);
  // Cold-tier round trip: the cold backend itself (bypassing the hot tier)
  // serves every chunk bit-exact.
  for (const auto& chunk : chunks) {
    auto got = tiered->cold()->Get(chunk.hash());
    ASSERT_TRUE(got.ok()) << chunk.hash().ToBase32();
    EXPECT_EQ(got->bytes().ToString(), chunk.bytes().ToString());
  }
}

TEST_F(DirtyManifestTieredTest, MissingManifestReconcilesFromTiers) {
  // A pre-manifest store (or one whose manifest file was lost): the hot
  // tier holds 20 chunks, only 8 of which ever reached the cold tier.
  auto seeded = MakeChunks(20, 51);
  {
    auto hot_or = FileChunkStore::Open(hot_dir_);
    ASSERT_TRUE(hot_or.ok());
    ASSERT_TRUE((*hot_or)->PutMany(seeded).ok());
    auto cold_or = FileChunkStore::Open(cold_dir_);
    ASSERT_TRUE(cold_or.ok());
    ASSERT_TRUE(
        (*cold_or)
            ->PutMany(std::span<const Chunk>(seeded.data(), 8))
            .ok());
  }
  ASSERT_FALSE(std::filesystem::exists(hot_dir_ + "/dirty-manifest.fbm"));

  auto tiered = OpenStack();
  // Reconcile marked exactly the 12 cold-missing chunks dirty — and wrote
  // them into the fresh manifest.
  EXPECT_EQ(tiered->tier_stats().dirty_pending, 12u);
  EXPECT_EQ(tiered->manifest()->dirty_count(), 12u);
  ASSERT_TRUE(tiered->FlushColdTier().ok());
  for (const auto& chunk : seeded) {
    EXPECT_TRUE(tiered->cold()->Contains(chunk.hash()));
  }
  EXPECT_EQ(tiered->manifest()->dirty_count(), 0u);
}

TEST_F(DirtyManifestTieredTest, TornManifestTailKeepsGoodPrefix) {
  auto chunks = MakeChunks(10, 52);
  {
    auto tiered = OpenStack();
    ASSERT_TRUE(tiered->PutMany(chunks).ok());
    faults_->SetProbability(FaultSchedule::Op::kPutBatch, 1.0,
                            {FaultSchedule::Kind::kTransient});
  }
  faults_->Clear();
  {
    // The crash tore the manifest's tail mid-record.
    std::ofstream manifest(hot_dir_ + "/dirty-manifest.fbm",
                           std::ios::binary | std::ios::app);
    const uint32_t magic = 0x46424d31;
    manifest.write(reinterpret_cast<const char*>(&magic), 4);
    manifest.write("D", 1);
    manifest.write("torn", 4);
  }
  auto tiered = OpenStack();
  EXPECT_EQ(tiered->tier_stats().dirty_pending, chunks.size());
  ASSERT_TRUE(tiered->FlushColdTier().ok());
  for (const auto& chunk : chunks) {
    EXPECT_TRUE(tiered->cold()->Contains(chunk.hash()));
  }
}

TEST(DirtyManifestTest, JournalCompactsOnceChurnDominates) {
  const std::string dir = ::testing::TempDir() + "/fb_manifest_compact";
  std::filesystem::remove_all(dir);
  auto manifest_or = DirtyManifest::Open(dir);
  ASSERT_TRUE(manifest_or.ok());
  auto& manifest = **manifest_or;
  EXPECT_FALSE(manifest.existed());

  Rng rng(53);
  std::vector<Hash256> live;
  for (int i = 0; i < 4; ++i) live.push_back(Sha256(Slice(rng.NextBytes(8))));
  ASSERT_TRUE(manifest.MarkDirty(live).ok());
  // Churn far past the compaction threshold (records > 2*dirty + 1024).
  for (int round = 0; round < 200; ++round) {
    std::vector<Hash256> batch;
    for (int i = 0; i < 4; ++i) {
      batch.push_back(Sha256(Slice(rng.NextBytes(8))));
    }
    ASSERT_TRUE(manifest.MarkDirty(batch).ok());
    ASSERT_TRUE(manifest.MarkClean(batch).ok());
  }
  EXPECT_GT(manifest.compactions(), 0u);
  // The journal never outgrows the compaction threshold: churn since the
  // last fold stays below 2*live + the floor.
  EXPECT_LE(manifest.record_count(), 2 * manifest.dirty_count() + 1024);
  EXPECT_EQ(manifest.dirty_count(), live.size());

  // The compacted journal replays to exactly the live set.
  manifest_or->reset();
  auto reopened = DirtyManifest::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->existed());
  auto ids = (*reopened)->DirtyIds();
  std::unordered_set<Hash256, Hash256Hasher> set(ids.begin(), ids.end());
  EXPECT_EQ(set.size(), live.size());
  for (const auto& id : live) EXPECT_TRUE(set.count(id));
  std::filesystem::remove_all(dir);
}

// ---- end-to-end: the full workload suite on a tiered persistent stack -----

class TieredForkBaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hot_dir_ = ::testing::TempDir() + "/fb_tiered_hot";
    cold_dir_ = ::testing::TempDir() + "/fb_tiered_cold";
    std::filesystem::remove_all(hot_dir_);
    std::filesystem::remove_all(cold_dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(hot_dir_);
    std::filesystem::remove_all(cold_dir_);
  }

  StatusOr<std::unique_ptr<ForkBase>> Open(bool write_back = false,
                                           bool group_commit = false) {
    ForkBase::OpenOptions open;
    open.tier_cold_dir = cold_dir_;
    open.tier_write_back = write_back;
    open.options.group_commit = group_commit;
    return ForkBase::OpenPersistent(hot_dir_, open);
  }

  std::string hot_dir_;
  std::string cold_dir_;
};

TEST_F(TieredForkBaseTest, PutScanDiffGcOnTieredStack) {
  auto db_or = Open();
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  ForkBase& db = **db_or;

  // Put + branch + edit.
  std::vector<std::pair<std::string, std::string>> kvs;
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    kvs.emplace_back("k" + std::to_string(i), rng.NextString(24));
  }
  ASSERT_TRUE(db.PutMap("doc", kvs).ok());
  ASSERT_TRUE(db.Branch("doc", "edit").ok());
  ASSERT_TRUE(db.UpdateMap("doc", {KeyedOp{"k42", "edited"}}, "edit").ok());

  // Scan (typed read of every entry).
  auto map = db.GetMap("doc", "edit");
  ASSERT_TRUE(map.ok());
  auto entries = map->Entries();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2000u);

  // Diff between the branches.
  auto diff = db.Diff("doc", "master", "edit");
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->keyed.size(), 1u);

  // Verify (Merkle sweep) + GC copy-collect into a fresh mem store.
  ASSERT_TRUE(db.Verify(*db.Head("doc", "edit")).ok());
  MemChunkStore gc_dest;
  auto gc = CopyLive(db, &gc_dest);
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  EXPECT_GT(gc->live_chunks, 0u);
  EXPECT_EQ(gc_dest.stats().chunk_count, gc->live_chunks);
}

TEST_F(TieredForkBaseTest, GroupCommitOnTieredWriteBackStack) {
  auto db_or = Open(/*write_back=*/true, /*group_commit=*/true);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  ForkBase& db = **db_or;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&db, t] {
      for (int i = 0; i < 20; ++i) {
        auto uid = db.Put("gc-key", Value::String(std::to_string(t * 100 + i)),
                          "b" + std::to_string(t));
        ASSERT_TRUE(uid.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 4; ++t) {
    auto history = db.History("gc-key", "b" + std::to_string(t));
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history->size(), 20u);
  }
}

TEST_F(TieredForkBaseTest, BoundedHotTierKeepsDiskWithinBudgetUnderWorkload) {
  // The bounded-tier acceptance run: a put/scan/diff/GC workload several
  // times the hot budget, on the real OpenPersistent write-back stack
  // (budget + manifest + background demotion + segment rewrite). The hot
  // directory's disk usage must stay within budget + one segment at every
  // checkpoint (modulo in-flight background reclamation, which the
  // checkpoint polls out), and every byte must read back bit-exact.
  constexpr uint64_t kBudget = 2ull << 20;
  constexpr uint64_t kSegment = 1ull << 20;  // OpenPersistent's clamp floor
  ForkBase::OpenOptions open;
  open.tier_cold_dir = cold_dir_;
  open.tier_write_back = true;
  open.hot_bytes_budget = kBudget;
  open.cache_bytes = 256 << 10;  // small cache: reads actually hit the tiers
  auto db_or = ForkBase::OpenPersistent(hot_dir_, open);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  ForkBase& db = **db_or;

  auto hot_segment_bytes = [&]() -> uint64_t {
    uint64_t total = 0;
    for (const auto& entry : std::filesystem::directory_iterator(hot_dir_)) {
      if (entry.path().extension() == ".fbc") {
        total += std::filesystem::file_size(entry.path());
      }
    }
    return total;
  };
  auto checkpoint = [&](const char* phase) {
    // Background demotion, eviction and segment rewrite are asynchronous;
    // give them a bounded window to catch up, then hold the line.
    const uint64_t bound = kBudget + kSegment;
    uint64_t disk = 0;
    for (int spin = 0; spin < 400; ++spin) {
      disk = hot_segment_bytes();
      if (disk <= bound) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    EXPECT_LE(disk, bound) << "hot tier over budget after " << phase;
  };

  Rng rng(60);
  std::map<std::string, std::map<std::string, std::string>> shadow;
  std::string blob_bytes;

  // Phase 1: bulk puts — 4 maps x 2000 entries (~4x the budget with tree
  // and commit overhead).
  for (int m = 0; m < 4; ++m) {
    const std::string key = "doc" + std::to_string(m);
    std::vector<std::pair<std::string, std::string>> kvs;
    std::map<std::string, std::string> content;
    for (int i = 0; i < 2000; ++i) {
      std::string k = "k" + std::to_string(i);
      std::string v = rng.NextString(180);
      content[k] = v;
      kvs.emplace_back(std::move(k), std::move(v));
    }
    ASSERT_TRUE(db.PutMap(key, kvs).ok());
    shadow[key] = std::move(content);
  }
  blob_bytes = rng.NextBytes(1 << 20);
  ASSERT_TRUE(db.PutBlob("bin", blob_bytes).ok());
  checkpoint("bulk puts");

  // Phase 2: branch + edit + diff.
  ASSERT_TRUE(db.Branch("doc0", "edit").ok());
  ASSERT_TRUE(db.UpdateMap("doc0", {KeyedOp{"k42", "edited"}}, "edit").ok());
  auto diff = db.Diff("doc0", "master", "edit");
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->keyed.size(), 1u);
  checkpoint("diff");

  // Phase 3: full scans — every entry of every map, bit-exact against the
  // shadow model (evicted chunks come back from the cold tier).
  for (const auto& [key, content] : shadow) {
    auto map = db.GetMap(key);
    ASSERT_TRUE(map.ok()) << key;
    auto entries = map->Entries();
    ASSERT_TRUE(entries.ok());
    ASSERT_EQ(entries->size(), content.size()) << key;
    for (const auto& [k, v] : *entries) {
      auto it = content.find(k);
      ASSERT_NE(it, content.end()) << key << "/" << k;
      ASSERT_EQ(it->second, v) << key << "/" << k;
    }
  }
  {
    auto blob = db.GetBlob("bin");
    ASSERT_TRUE(blob.ok());
    auto bytes = blob->ReadAll();
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(*bytes, blob_bytes);
  }
  checkpoint("scans");

  // Phase 4: GC copy-collect (sweeps the tier union) + verification.
  MemChunkStore gc_dest;
  auto gc = CopyLive(db, &gc_dest);
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  EXPECT_GT(gc->live_chunks, 0u);
  EXPECT_EQ(gc_dest.stats().chunk_count, gc->live_chunks);
  for (const auto& [key, content] : shadow) {
    (void)content;
    ASSERT_TRUE(db.Verify(*db.Head(key)).ok()) << key;
  }
  checkpoint("gc");

  // The budget really bit, dirty chunks never evicted: after a full flush
  // nothing is pinned, and the evictor has done real work.
  ASSERT_NE(db.tiered(), nullptr);
  ASSERT_TRUE(db.tiered()->FlushColdTier().ok());
  auto tier = db.tiered()->tier_stats();
  EXPECT_GT(tier.evictions, 0u) << "workload never exceeded the budget?";
  EXPECT_EQ(tier.pinned_dirty_bytes, 0u);
  EXPECT_EQ(tier.dirty_pending, 0u);
  checkpoint("final flush");
}

TEST_F(TieredForkBaseTest, LostHotTierRecoversFromColdBackend) {
  Hash256 head;
  {
    auto db_or = Open();  // write-through: cold holds everything
    ASSERT_TRUE(db_or.ok());
    ForkBase& db = **db_or;
    std::vector<std::pair<std::string, std::string>> kvs;
    Rng rng(18);
    for (int i = 0; i < 1000; ++i) {
      kvs.emplace_back(rng.NextString(12), rng.NextString(24));
    }
    ASSERT_TRUE(db.PutMap("survivor", kvs).ok());
    head = *db.Head("survivor");
    ASSERT_TRUE(db.branches().SaveToFile(hot_dir_ + "/branches.tsv").ok());
  }
  // The hot disk dies: every segment file vanishes; only the branch sidecar
  // survives (client-held state).
  for (const auto& entry : std::filesystem::directory_iterator(hot_dir_)) {
    if (entry.path().extension() == ".fbc") {
      std::filesystem::remove(entry.path());
    }
  }
  auto db_or = Open();
  ASSERT_TRUE(db_or.ok());
  ForkBase& db = **db_or;
  ASSERT_TRUE(db.branches().LoadFromFile(hot_dir_ + "/branches.tsv").ok());
  auto map = db.GetMap("survivor");
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(*map->Size(), 1000u);
  EXPECT_TRUE(db.Verify(head).ok());
}

}  // namespace
}  // namespace forkbase

// Chunk-boundary stability: the block-wise splitter must cut a fixed seeded
// corpus at exactly the positions the original byte-at-a-time splitter did.
// The digests below were captured from the pre-rewrite implementation; every
// chunk id in every existing store depends on these cut positions, so any
// drift here is a data-compatibility break, not a tuning change.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "postree/splitter.h"
#include "util/random.h"
#include "util/sha256.h"

namespace forkbase {
namespace {

constexpr uint64_t kCorpusSeed = 0x8d1b5ull;
constexpr size_t kCorpusBytes = 8 << 20;

std::string GoldenCorpus() {
  Rng rng(kCorpusSeed);
  return rng.NextBytes(kCorpusBytes);
}

// SHA-256 of the cut positions serialized as little-endian u64s — one value
// pins the whole boundary sequence.
std::string CutDigest(const std::vector<uint64_t>& cuts) {
  std::string ser;
  ser.reserve(cuts.size() * 8);
  for (uint64_t c : cuts) {
    for (int b = 0; b < 8; ++b) ser.push_back(static_cast<char>(c >> (8 * b)));
  }
  return Sha256(Slice(ser)).ToHex();
}

std::vector<uint64_t> CutsByByte(const SplitConfig& cfg, const std::string& s) {
  NodeSplitter splitter(cfg);
  std::vector<uint64_t> cuts;
  for (size_t i = 0; i < s.size(); ++i) {
    if (splitter.AddByte(static_cast<uint8_t>(s[i]))) {
      cuts.push_back(i + 1);  // boundary after byte i
      splitter.ResetNode();
    }
  }
  return cuts;
}

std::vector<uint64_t> CutsByFeed(const SplitConfig& cfg, const std::string& s,
                                 size_t granularity) {
  NodeSplitter splitter(cfg);
  std::vector<uint64_t> cuts;
  uint64_t consumed_total = 0;
  size_t off = 0;
  while (off < s.size()) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(s.data()) + off;
    size_t remaining = std::min(granularity, s.size() - off);
    while (remaining > 0) {
      bool cut = false;
      const size_t took = splitter.Feed(p, remaining, &cut);
      if (took == 0) {  // must always make progress; avoid looping forever
        ADD_FAILURE() << "Feed consumed nothing";
        return cuts;
      }
      consumed_total += took;
      p += took;
      remaining -= took;
      if (cut) {
        cuts.push_back(consumed_total);
        splitter.ResetNode();
      }
    }
    off += std::min(granularity, s.size() - off);
  }
  return cuts;
}

TEST(ChunkerGoldenTest, BlobConfigMatchesPinnedBoundaries) {
  const std::string corpus = GoldenCorpus();
  const std::vector<uint64_t> cuts = CutsByByte(SplitConfig::Blob(), corpus);
  ASSERT_EQ(cuts.size(), 1677u);
  EXPECT_EQ(CutDigest(cuts),
            "d59f867f20c0ec03b5f24083d72a67402a283d90af491658e6bd2b89f86481e3");
  const std::vector<uint64_t> expect_first = {9102,  17533, 28206, 44590,
                                              48295, 49407, 50719, 54177};
  for (size_t i = 0; i < expect_first.size(); ++i) {
    EXPECT_EQ(cuts[i], expect_first[i]) << i;
  }
  EXPECT_EQ(cuts[cuts.size() - 4], 8367236u);
  EXPECT_EQ(cuts.back(), 8388494u);
}

TEST(ChunkerGoldenTest, EntriesConfigMatchesPinnedBoundaries) {
  const std::string corpus = GoldenCorpus();
  const std::vector<uint64_t> cuts = CutsByByte(SplitConfig::Entries(), corpus);
  ASSERT_EQ(cuts.size(), 3663u);
  EXPECT_EQ(CutDigest(cuts),
            "7be26b583367b9999b7e9cca986a099b1943d1ded3e3dfe7435ac6581d4c3bee");
  const std::vector<uint64_t> expect_first = {1030,  4535,  5394,  13586,
                                              15224, 20518, 24420, 25220};
  for (size_t i = 0; i < expect_first.size(); ++i) {
    EXPECT_EQ(cuts[i], expect_first[i]) << i;
  }
}

// Zero bytes never fire the pattern, so every cut is the max_bytes clamp.
TEST(ChunkerGoldenTest, AllZerosCutAtMaxBytes) {
  const std::string zeros(1 << 20, '\0');
  const std::vector<uint64_t> cuts = CutsByByte(SplitConfig::Blob(), zeros);
  ASSERT_EQ(cuts.size(), 64u);
  for (size_t i = 0; i < cuts.size(); ++i) {
    EXPECT_EQ(cuts[i], (i + 1) * SplitConfig::Blob().max_bytes);
  }
}

// The entry path: pattern is per-entry local and gated on the entry END
// reaching min_bytes — the skip/scan split in AddEntry must preserve that.
TEST(ChunkerGoldenTest, EntryPathMatchesPinnedBoundaries) {
  Rng rng(0x77aabb01ull);
  NodeSplitter splitter(SplitConfig::Entries());
  std::vector<uint64_t> cuts;
  uint64_t pos = 0;
  for (int i = 0; i < 200000; ++i) {
    const std::string e = rng.NextBytes(8 + rng.Uniform(57));
    pos += e.size();
    if (splitter.AddEntry(Slice(e))) {
      cuts.push_back(pos);
      splitter.ResetNode();
    }
  }
  ASSERT_EQ(pos, 7189852u);
  ASSERT_EQ(cuts.size(), 3247u);
  EXPECT_EQ(CutDigest(cuts),
            "7de83b4ea3987d64c7ad968c6f3ca3e55891a0bca4a124ceef82e436c3f6d082");
  const std::vector<uint64_t> expect_first = {1603,  3558,  8651,  12416,
                                              16052, 19950, 20833, 21428};
  for (size_t i = 0; i < expect_first.size(); ++i) {
    EXPECT_EQ(cuts[i], expect_first[i]) << i;
  }
}

// Cut points are a pure function of the byte stream: the same corpus fed at
// 1-byte, 7-byte and 64-KiB granularity must produce identical boundaries
// (and identical to the AddByte reference).
TEST(ChunkerGoldenTest, FeedGranularityInvariance) {
  const std::string corpus = GoldenCorpus();
  for (const SplitConfig& cfg :
       {SplitConfig::Blob(), SplitConfig::Entries()}) {
    const std::vector<uint64_t> reference = CutsByByte(cfg, corpus);
    for (size_t granularity : {size_t{1}, size_t{7}, size_t{64 << 10}}) {
      SCOPED_TRACE(granularity);
      EXPECT_EQ(CutsByFeed(cfg, corpus, granularity), reference);
    }
  }
}

}  // namespace
}  // namespace forkbase

// Tests for branch-based access control and the enforcing facade.
#include <gtest/gtest.h>

#include "chunk/mem_chunk_store.h"
#include "store/access_control.h"

namespace forkbase {
namespace {

class AccessControlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(acl_.AddUser("admin", /*is_admin=*/true).ok());
    ASSERT_TRUE(acl_.AddUser("alice").ok());
    ASSERT_TRUE(acl_.AddUser("bob").ok());
  }
  AccessController acl_;
};

TEST_F(AccessControlTest, AdminHasEverything) {
  EXPECT_TRUE(acl_.Check("admin", "any", "branch", Permission::kRead).ok());
  EXPECT_TRUE(acl_.Check("admin", "any", "branch", Permission::kWrite).ok());
}

TEST_F(AccessControlTest, UnknownUserDenied) {
  EXPECT_TRUE(acl_.Check("mallory", "k", "master", Permission::kRead)
                  .IsPermissionDenied());
}

TEST_F(AccessControlTest, DuplicateUserRejected) {
  EXPECT_EQ(acl_.AddUser("alice").code(), StatusCode::kAlreadyExists);
}

TEST_F(AccessControlTest, GrantIsBranchScoped) {
  ASSERT_TRUE(
      acl_.Grant("admin", "alice", "dataset", "dev", Permission::kWrite).ok());
  EXPECT_TRUE(acl_.Check("alice", "dataset", "dev", Permission::kWrite).ok());
  EXPECT_TRUE(acl_.Check("alice", "dataset", "master", Permission::kWrite)
                  .IsPermissionDenied())
      << "grant on dev must not leak to master";
  EXPECT_TRUE(acl_.Check("alice", "dataset", "dev", Permission::kRead)
                  .IsPermissionDenied())
      << "write grant does not imply read";
}

TEST_F(AccessControlTest, WildcardGrants) {
  ASSERT_TRUE(acl_.Grant("admin", "alice", "*", "master", Permission::kRead)
                  .ok());
  EXPECT_TRUE(acl_.Check("alice", "anything", "master", Permission::kRead).ok());
  EXPECT_TRUE(acl_.Check("alice", "anything", "dev", Permission::kRead)
                  .IsPermissionDenied());
  ASSERT_TRUE(acl_.Grant("admin", "bob", "ds", "*", Permission::kRead).ok());
  EXPECT_TRUE(acl_.Check("bob", "ds", "whatever", Permission::kRead).ok());
}

TEST_F(AccessControlTest, NonAdminCannotGrant) {
  EXPECT_TRUE(acl_.Grant("alice", "bob", "k", "b", Permission::kRead)
                  .IsPermissionDenied());
}

TEST_F(AccessControlTest, RevokeRemovesAccess) {
  ASSERT_TRUE(acl_.Grant("admin", "alice", "k", "b", Permission::kRead).ok());
  ASSERT_TRUE(acl_.Check("alice", "k", "b", Permission::kRead).ok());
  ASSERT_TRUE(acl_.Revoke("admin", "alice", "k", "b", Permission::kRead).ok());
  EXPECT_TRUE(
      acl_.Check("alice", "k", "b", Permission::kRead).IsPermissionDenied());
  EXPECT_TRUE(acl_.Revoke("admin", "alice", "k", "b", Permission::kRead)
                  .IsNotFound());
}

class SecureForkBaseTest : public ::testing::Test {
 protected:
  SecureForkBaseTest()
      : db_(std::make_shared<MemChunkStore>()), secure_(&db_, &acl_) {}

  void SetUp() override {
    ASSERT_TRUE(acl_.AddUser("admin", true).ok());
    ASSERT_TRUE(acl_.AddUser("analyst").ok());
    ASSERT_TRUE(
        secure_.Put("admin", "ds", Value::String("v1"), "master").ok());
  }

  AccessController acl_;
  ForkBase db_;
  SecureForkBase secure_;
};

TEST_F(SecureForkBaseTest, ReadRequiresGrant) {
  EXPECT_TRUE(secure_.Get("analyst", "ds").status().IsPermissionDenied());
  ASSERT_TRUE(
      acl_.Grant("admin", "analyst", "ds", "master", Permission::kRead).ok());
  auto v = secure_.Get("analyst", "ds");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "v1");
}

TEST_F(SecureForkBaseTest, WriteRequiresGrant) {
  EXPECT_TRUE(secure_.Put("analyst", "ds", Value::String("x"), "master")
                  .status()
                  .IsPermissionDenied());
  ASSERT_TRUE(
      acl_.Grant("admin", "analyst", "ds", "master", Permission::kWrite).ok());
  auto uid = secure_.Put("analyst", "ds", Value::String("x"), "master");
  ASSERT_TRUE(uid.ok());
  // The commit is attributed to the acting user.
  auto meta = db_.Meta(*uid);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->author, "analyst");
}

TEST_F(SecureForkBaseTest, BranchNeedsReadOnSourceWriteOnTarget) {
  EXPECT_FALSE(secure_.Branch("analyst", "ds", "dev", "master").ok());
  ASSERT_TRUE(
      acl_.Grant("admin", "analyst", "ds", "master", Permission::kRead).ok());
  EXPECT_FALSE(secure_.Branch("analyst", "ds", "dev", "master").ok());
  ASSERT_TRUE(
      acl_.Grant("admin", "analyst", "ds", "dev", Permission::kWrite).ok());
  EXPECT_TRUE(secure_.Branch("analyst", "ds", "dev", "master").ok());
}

TEST_F(SecureForkBaseTest, MergeAndDiffChecks) {
  ASSERT_TRUE(secure_.Branch("admin", "ds", "dev", "master").ok());
  ASSERT_TRUE(secure_.Put("admin", "ds", Value::String("v2"), "dev").ok());
  EXPECT_TRUE(secure_.Diff("analyst", "ds", "master", "dev")
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(secure_.Merge("analyst", "ds", "master", "dev")
                  .status()
                  .IsPermissionDenied());
  ASSERT_TRUE(
      acl_.Grant("admin", "analyst", "ds", "*", Permission::kRead).ok());
  EXPECT_TRUE(secure_.Diff("analyst", "ds", "master", "dev").ok());
  // Merge additionally needs write on dst.
  EXPECT_TRUE(secure_.Merge("analyst", "ds", "master", "dev")
                  .status()
                  .IsPermissionDenied());
  ASSERT_TRUE(
      acl_.Grant("admin", "analyst", "ds", "master", Permission::kWrite).ok());
  EXPECT_TRUE(secure_.Merge("analyst", "ds", "master", "dev").ok());
}

}  // namespace
}  // namespace forkbase

// SHA-256 backend conformance: FIPS 180-4 known-answer vectors against every
// compiled backend, randomized cross-backend equivalence, and the Finish()
// contract (idempotent; Update-after-Finish aborts).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/cpu_features.h"
#include "util/random.h"
#include "util/sha256.h"
#include "util/worker_pool.h"

namespace forkbase {
namespace {

struct Kat {
  const char* name;
  std::string message;
  const char* hex;
};

// Boundary-straddling messages matter most: 56 B and beyond force the padding
// into a second block, 64 B is an exact block, 65 B starts a third regime,
// and the million-'a' NIST vector exercises the multi-block bulk loop.
std::vector<Kat> Vectors() {
  return {
      {"empty", std::string(),
       "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
      {"abc", "abc",
       "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
      {"nist-56B",
       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
      {"a*64", std::string(64, 'a'),
       "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"},
      {"a*65", std::string(65, 'a'),
       "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0"},
      {"a*1e6", std::string(1000000, 'a'),
       "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"},
  };
}

std::vector<Sha256Backend> AvailableBackends() {
  std::vector<Sha256Backend> out;
  for (Sha256Backend be : {Sha256Backend::kScalar, Sha256Backend::kShaNi,
                           Sha256Backend::kArmCe}) {
    if (Sha256BackendAvailable(be)) out.push_back(be);
  }
  return out;
}

TEST(Sha256BackendTest, NistVectorsEveryBackend) {
  for (Sha256Backend be : AvailableBackends()) {
    SCOPED_TRACE(Sha256BackendName(be));
    for (const Kat& kat : Vectors()) {
      SCOPED_TRACE(kat.name);
      Sha256Hasher h(be);
      h.Update(Slice(kat.message));
      EXPECT_EQ(h.Finish().ToHex(), kat.hex);
    }
  }
}

TEST(Sha256BackendTest, SeqMebibyteEveryBackend) {
  std::string buf(1 << 20, '\0');
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<char>(i & 0xFF);
  }
  for (Sha256Backend be : AvailableBackends()) {
    SCOPED_TRACE(Sha256BackendName(be));
    Sha256Hasher h(be);
    h.Update(Slice(buf));
    EXPECT_EQ(h.Finish().ToHex(),
              "fbbab289f7f94b25736c58be46a994c441fd02552cc6022352e3d86d2fab7c83");
  }
}

// Randomized equivalence: every backend, every split of the stream into
// Update() calls, and the one-shot helper all agree on random inputs whose
// lengths sweep the padding boundaries.
TEST(Sha256BackendTest, CrossBackendSplitUpdateFuzz) {
  Rng rng(0x5ac1f00dull);
  const auto backends = AvailableBackends();
  for (int iter = 0; iter < 200; ++iter) {
    const size_t len = static_cast<size_t>(rng.Uniform(300)) +
                       (iter % 4 == 0 ? 64 * (iter / 4) : 0);
    const std::string msg = rng.NextBytes(len);
    const Hash256 want = Sha256(Slice(msg));
    for (Sha256Backend be : backends) {
      SCOPED_TRACE(Sha256BackendName(be));
      Sha256Hasher oneshot(be);
      oneshot.Update(Slice(msg));
      EXPECT_EQ(oneshot.Finish(), want) << "len=" << len;

      Sha256Hasher split(be);
      size_t off = 0;
      while (off < msg.size()) {
        const size_t take =
            std::min<size_t>(msg.size() - off, 1 + rng.Uniform(97));
        split.Update(Slice(msg.data() + off, take));
        off += take;
      }
      EXPECT_EQ(split.Finish(), want) << "len=" << len;
    }
  }
}

TEST(Sha256BackendTest, FinishIsIdempotent) {
  for (Sha256Backend be : AvailableBackends()) {
    SCOPED_TRACE(Sha256BackendName(be));
    Sha256Hasher h(be);
    h.Update(Slice("abc", 3));
    const Hash256 first = h.Finish();
    // The old implementation mixed the padding into the stream again here
    // and returned a different digest.
    EXPECT_EQ(h.Finish(), first);
    EXPECT_EQ(h.Finish(), first);
    EXPECT_EQ(
        first.ToHex(),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  }
}

TEST(Sha256BackendTest, ResetRearmsAfterFinish) {
  Sha256Hasher h;
  h.Update(Slice("abc", 3));
  const Hash256 abc = h.Finish();
  h.Reset();
  h.Update(Slice("abc", 3));
  EXPECT_EQ(h.Finish(), abc);
  h.Reset();
  EXPECT_EQ(
      h.Finish().ToHex(),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

#if GTEST_HAS_DEATH_TEST
TEST(Sha256BackendDeathTest, UpdateAfterFinishAborts) {
  EXPECT_DEATH(
      {
        Sha256Hasher h;
        h.Update(Slice("abc", 3));
        (void)h.Finish();
        h.Update(Slice("more", 4));
      },
      "Update\\(\\) after Finish\\(\\)");
}
#endif

// Visible in `ctest -V` (CI's backend-report step greps for it), and pins
// the contract of the FORKBASE_SHA256_BACKEND override: when the env var
// names an available backend, dispatch must obey it — this is what makes
// the CI forced-scalar leg actually test the scalar core.
TEST(Sha256BackendTest, PrintsDetectedBackend) {
  std::printf("[ SHA-256 backend: %s ]\n", ActiveSha256BackendName());
  const char* pinned = std::getenv("FORKBASE_SHA256_BACKEND");
  if (pinned != nullptr) {
    Sha256Backend want;
    if (ParseSha256BackendName(pinned, &want) &&
        Sha256BackendAvailable(want)) {
      EXPECT_EQ(ActiveSha256Backend(), want);
    }
  }
}

TEST(Sha256BackendTest, BackendNameRoundTrip) {
  EXPECT_STREQ(Sha256BackendName(Sha256Backend::kScalar), "scalar");
  EXPECT_STREQ(Sha256BackendName(Sha256Backend::kShaNi), "shani");
  EXPECT_STREQ(Sha256BackendName(Sha256Backend::kArmCe), "armce");
  Sha256Backend be;
  EXPECT_TRUE(ParseSha256BackendName("scalar", &be));
  EXPECT_EQ(be, Sha256Backend::kScalar);
  EXPECT_TRUE(ParseSha256BackendName("sha-ni", &be));
  EXPECT_EQ(be, Sha256Backend::kShaNi);
  EXPECT_TRUE(ParseSha256BackendName("armce", &be));
  EXPECT_EQ(be, Sha256Backend::kArmCe);
  EXPECT_FALSE(ParseSha256BackendName("quantum", &be));
  // Scalar must exist everywhere: it is the fallback every dispatch
  // decision can rely on.
  EXPECT_TRUE(Sha256BackendAvailable(Sha256Backend::kScalar));
}

TEST(Sha256BackendTest, ForcedBackendOverride) {
  const Sha256Backend prev = SetSha256BackendForTesting(Sha256Backend::kScalar);
  EXPECT_EQ(ActiveSha256Backend(), Sha256Backend::kScalar);
  Sha256Hasher h;  // default ctor follows the active backend
  h.Update(Slice("abc", 3));
  EXPECT_EQ(
      h.Finish().ToHex(),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  SetSha256BackendForTesting(prev);
  EXPECT_EQ(ActiveSha256Backend(), prev);
}

TEST(Sha256ManyTest, MatchesSerialLoopInlineAndPooled) {
  Rng rng(0xba7c4ull);
  std::vector<std::string> bufs;
  std::vector<Slice> spans;
  for (int i = 0; i < 64; ++i) {
    bufs.push_back(rng.NextBytes(rng.Uniform(4096)));
  }
  for (const std::string& b : bufs) spans.emplace_back(b);

  const std::vector<Hash256> inline_digests =
      Sha256Many(spans, /*pool=*/nullptr);
  ASSERT_EQ(inline_digests.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(inline_digests[i], Sha256(spans[i])) << i;
  }

  WorkerPool pool(3);
  const std::vector<Hash256> pooled = Sha256Many(spans, &pool);
  EXPECT_EQ(pooled, inline_digests);

  const std::vector<Hash256> shared = Sha256Many(spans, SharedHashPool());
  EXPECT_EQ(shared, inline_digests);

  EXPECT_TRUE(Sha256Many({}, &pool).empty());
}

}  // namespace
}  // namespace forkbase

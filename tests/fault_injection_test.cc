// Fault-injection harness: randomized fault schedules (transient Get/Put
// failures, timeouts/latency spikes, short reads) driven through the tiered
// store stack and the full ForkBase facade. The invariant under test is the
// failure contract, not any particular success path: every operation either
// fails cleanly with a Status or succeeds with bit-exact data — no silent
// corruption, no error remembered as "absent", no acknowledged write lost.
//
// All schedules are seeded, so a failure reproduces from the test name
// alone. The suite runs in the ASan and TSan CI jobs; the concurrent
// scenario exists specifically for TSan.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <thread>

#include "chunk/caching_chunk_store.h"
#include "chunk/mem_chunk_store.h"
#include "chunk/remote_chunk_store.h"
#include "chunk/tiered_chunk_store.h"
#include "store/forkbase.h"
#include "util/random.h"

namespace forkbase {
namespace {

constexpr double kFaultP = 0.25;

std::vector<FaultSchedule::Kind> AllReadKinds() {
  return {FaultSchedule::Kind::kTransient, FaultSchedule::Kind::kTimeout,
          FaultSchedule::Kind::kShortRead};
}
std::vector<FaultSchedule::Kind> AllWriteKinds() {
  return {FaultSchedule::Kind::kTransient, FaultSchedule::Kind::kTimeout};
}

/// Tiered stack with a fault-injected remote cold tier. Timeouts are kept
/// short (the sim sleeps them out for real) and latency at zero so the
/// randomized runs stay fast.
struct FaultedStack {
  explicit FaultedStack(TierPolicy policy, uint64_t seed,
                        uint64_t hot_budget = 0) {
    hot = std::make_shared<MemChunkStore>();
    cold_backend = std::make_shared<MemChunkStore>();
    faults = std::make_shared<FaultSchedule>();
    faults->SetProbability(FaultSchedule::Op::kGet, kFaultP, AllReadKinds(),
                           seed);
    faults->SetProbability(FaultSchedule::Op::kGetBatch, kFaultP,
                           AllReadKinds(), seed + 1);
    faults->SetProbability(FaultSchedule::Op::kPut, kFaultP, AllWriteKinds(),
                           seed + 2);
    faults->SetProbability(FaultSchedule::Op::kPutBatch, kFaultP,
                           AllWriteKinds(), seed + 3);
    RemoteChunkStore::Options remote_options;
    remote_options.timeout_us = 100;
    remote_options.connections = 2;
    remote_options.faults = faults;
    cold = std::make_shared<RemoteChunkStore>(cold_backend, remote_options);
    TieredChunkStore::Options options;
    options.policy = policy;
    options.demote_batch = 8;
    options.write_back_watermark = 16;
    options.hot_bytes_budget = hot_budget;
    options.evict_batch = 8;
    tiered = std::make_shared<TieredChunkStore>(hot, cold, options);
  }

  std::shared_ptr<MemChunkStore> hot;
  std::shared_ptr<MemChunkStore> cold_backend;
  std::shared_ptr<FaultSchedule> faults;
  std::shared_ptr<RemoteChunkStore> cold;
  std::shared_ptr<TieredChunkStore> tiered;
};

Chunk RandomChunk(Rng& rng) {
  return Chunk::Make(ChunkType::kCell, rng.NextBytes(32 + rng.Uniform(96)));
}

/// Drives a randomized put/get/flush workload against `stack`, recording
/// every chunk whose write was acknowledged. Returns the shadow model.
std::map<std::string, std::pair<Hash256, std::string>> RunWorkload(
    FaultedStack& stack, uint64_t seed, int ops) {
  std::map<std::string, std::pair<Hash256, std::string>> shadow;
  std::vector<Hash256> known;
  Rng rng(seed);
  for (int op = 0; op < ops; ++op) {
    const uint64_t action = rng.Uniform(10);
    if (action < 4) {
      // Batched put of fresh chunks. Only acknowledged batches enter the
      // shadow — a failed batch may be partially resident, which is
      // harmless under content addressing (retrying is idempotent).
      std::vector<Chunk> chunks;
      const size_t n = 1 + rng.Uniform(8);
      for (size_t i = 0; i < n; ++i) chunks.push_back(RandomChunk(rng));
      if (stack.tiered->PutMany(chunks).ok()) {
        for (const auto& chunk : chunks) {
          shadow[chunk.hash().ToBase32()] = {chunk.hash(),
                                             chunk.bytes().ToString()};
          known.push_back(chunk.hash());
        }
      }
    } else if (action < 8 && !known.empty()) {
      // Batched read of known ids plus an absent one. Slots either carry
      // the exact bytes, kNotFound (absent id), or a clean error.
      std::vector<Hash256> ids;
      const size_t n = 1 + rng.Uniform(12);
      for (size_t i = 0; i < n; ++i) {
        ids.push_back(known[rng.Uniform(known.size())]);
      }
      ids.push_back(Sha256(Slice("absent-" + std::to_string(op))));
      auto slots = stack.tiered->GetMany(ids);
      EXPECT_EQ(slots.size(), ids.size());
      for (size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].ok()) {
          // A clean failure is fine — but an ACKNOWLEDGED chunk must never
          // be reported absent: unreachable may not collapse into
          // kNotFound.
          EXPECT_FALSE(slots[i].status().IsNotFound() &&
                       shadow.count(ids[i].ToBase32()) > 0)
              << "acknowledged chunk reported absent in slot " << i;
          continue;
        }
        EXPECT_EQ(slots[i]->hash(), ids[i])
            << "silent corruption in slot " << i;
        auto it = shadow.find(ids[i].ToBase32());
        EXPECT_NE(it, shadow.end());
        if (it != shadow.end()) {
          EXPECT_EQ(slots[i]->bytes().ToString(), it->second.second);
        }
      }
    } else if (action == 8 && !known.empty()) {
      auto got = stack.tiered->Get(known[rng.Uniform(known.size())]);
      if (got.ok()) {
        EXPECT_EQ(got->bytes().ToString(),
                  shadow[got->hash().ToBase32()].second);
      } else {
        EXPECT_FALSE(got.status().IsNotFound())
            << "acknowledged chunk reported absent";
      }
    } else {
      // Demotion under faults: may fail cleanly; ids stay dirty.
      (void)stack.tiered->FlushColdTier();
    }
  }
  return shadow;
}

void VerifyAllReadable(
    FaultedStack& stack,
    const std::map<std::string, std::pair<Hash256, std::string>>& shadow) {
  stack.faults->Clear();
  // With faults off the flush must land every dirty chunk.
  ASSERT_TRUE(stack.tiered->FlushColdTier().ok());
  for (const auto& [name, entry] : shadow) {
    auto got = stack.tiered->Get(entry.first);
    ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
    EXPECT_EQ(got->bytes().ToString(), entry.second) << name;
  }
}

TEST(FaultInjectionTest, RandomizedFaultsWriteThrough) {
  FaultedStack stack(TierPolicy::kWriteThrough, 1001);
  auto shadow = RunWorkload(stack, 2001, 400);
  EXPECT_GT(stack.faults->injected_count(), 0u) << "schedule never fired";
  EXPECT_GT(shadow.size(), 0u);
  VerifyAllReadable(stack, shadow);
}

TEST(FaultInjectionTest, RandomizedFaultsWriteBack) {
  FaultedStack stack(TierPolicy::kWriteBack, 1003);
  auto shadow = RunWorkload(stack, 2003, 400);
  EXPECT_GT(stack.faults->injected_count(), 0u) << "schedule never fired";
  EXPECT_GT(shadow.size(), 0u);
  VerifyAllReadable(stack, shadow);
  // Write-back promise: after a clean flush the cold tier holds every
  // acknowledged chunk, whatever the faults did to individual drains.
  for (const auto& [name, entry] : shadow) {
    EXPECT_TRUE(stack.cold_backend->Contains(entry.first)) << name;
  }
}

TEST(FaultInjectionTest, WriteThroughPutRetriesConverge) {
  // A caller that retries a failed batch must eventually land it, and the
  // partial residue of failed attempts must never corrupt anything.
  FaultedStack stack(TierPolicy::kWriteThrough, 1005);
  Rng rng(2005);
  for (int round = 0; round < 20; ++round) {
    std::vector<Chunk> chunks;
    for (int i = 0; i < 6; ++i) chunks.push_back(RandomChunk(rng));
    int attempts = 0;
    while (!stack.tiered->PutMany(chunks).ok()) {
      ASSERT_LT(++attempts, 200) << "retry did not converge";
    }
    for (const auto& chunk : chunks) {
      EXPECT_TRUE(stack.hot->Contains(chunk.hash()));
      EXPECT_TRUE(stack.cold_backend->Contains(chunk.hash()));
    }
  }
}

TEST(FaultInjectionTest, ConcurrentWorkloadUnderFaults) {
  // Four writers/readers on one faulted write-back stack with background
  // demotion racing them — the TSan target for the whole tier machinery.
  FaultedStack stack(TierPolicy::kWriteBack, 1007);
  std::mutex mu;
  std::map<std::string, std::pair<Hash256, std::string>> shadow;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&stack, &mu, &shadow, t] {
      Rng rng(3000 + static_cast<uint64_t>(t));
      std::vector<Hash256> mine;
      for (int op = 0; op < 120; ++op) {
        if (rng.Uniform(2) == 0 || mine.empty()) {
          std::vector<Chunk> chunks;
          const size_t n = 1 + rng.Uniform(4);
          for (size_t i = 0; i < n; ++i) chunks.push_back(RandomChunk(rng));
          if (stack.tiered->PutMany(chunks).ok()) {
            std::lock_guard<std::mutex> lock(mu);
            for (const auto& chunk : chunks) {
              shadow[chunk.hash().ToBase32()] = {chunk.hash(),
                                                 chunk.bytes().ToString()};
              mine.push_back(chunk.hash());
            }
          }
        } else {
          std::vector<Hash256> ids;
          for (size_t i = 0; i < 4 && i < mine.size(); ++i) {
            ids.push_back(mine[rng.Uniform(mine.size())]);
          }
          auto slots = stack.tiered->GetMany(ids);
          for (size_t i = 0; i < slots.size(); ++i) {
            if (slots[i].ok()) {
              EXPECT_EQ(slots[i]->hash(), ids[i]);
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  VerifyAllReadable(stack, shadow);
}

TEST(FaultInjectionTest, ConcurrentEvictionRacesDemotionUnderFaults) {
  // The bounded-tier TSan target: a write-back stack whose hot budget is a
  // fraction of the working set, so the evictor (running on putting and
  // draining threads alike) races background demotion, faulted cold writes
  // re-marking chunks dirty, and readers healing evicted slots from the
  // cold tier — all at once. The invariant is unchanged: acknowledged
  // chunks are never reported absent and always read back bit-exact.
  FaultedStack stack(TierPolicy::kWriteBack, 1011, /*hot_budget=*/4096);
  std::mutex mu;
  std::map<std::string, std::pair<Hash256, std::string>> shadow;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&stack, &mu, &shadow, t] {
      Rng rng(4000 + static_cast<uint64_t>(t));
      std::vector<Hash256> mine;
      for (int op = 0; op < 150; ++op) {
        const uint64_t action = rng.Uniform(10);
        if (action < 5 || mine.empty()) {
          std::vector<Chunk> chunks;
          const size_t n = 1 + rng.Uniform(4);
          for (size_t i = 0; i < n; ++i) chunks.push_back(RandomChunk(rng));
          if (stack.tiered->PutMany(chunks).ok()) {
            std::lock_guard<std::mutex> lock(mu);
            for (const auto& chunk : chunks) {
              shadow[chunk.hash().ToBase32()] = {chunk.hash(),
                                                 chunk.bytes().ToString()};
              mine.push_back(chunk.hash());
            }
          }
        } else if (action < 9) {
          std::vector<Hash256> ids;
          for (size_t i = 0; i < 6 && i < mine.size(); ++i) {
            ids.push_back(mine[rng.Uniform(mine.size())]);
          }
          auto slots = stack.tiered->GetMany(ids);
          for (size_t i = 0; i < slots.size(); ++i) {
            if (slots[i].ok()) {
              EXPECT_EQ(slots[i]->hash(), ids[i]);
            } else {
              EXPECT_FALSE(slots[i].status().IsNotFound())
                  << "evicted chunk lost instead of healed from cold";
            }
          }
        } else {
          // Drains race the evictor directly (both run on this thread's
          // FlushColdTier and on the background pool).
          (void)stack.tiered->FlushColdTier();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  VerifyAllReadable(stack, shadow);
  auto tier = stack.tiered->tier_stats();
  EXPECT_GT(tier.evictions, 0u) << "budget never bit — test is vacuous";
  // The budget held: the tracker (exact for a Mem hot tier) is back under
  // it once the final flush unpinned everything and the evictor ran.
  stack.tiered->EnforceHotBudget();
  EXPECT_LE(stack.tiered->tier_stats().hot_bytes, 4096u);
}

TEST(FaultInjectionTest, ForkBaseCommitsSurviveColdTierFaults) {
  // Full facade over the faulted stack (cache on top, like OpenPersistent
  // builds it): commits may fail with a clean Status, but every commit that
  // returned a uid must verify once the weather clears.
  FaultedStack stack(TierPolicy::kWriteThrough, 1009);
  ForkBase db(std::make_shared<CachingChunkStore>(stack.tiered, 1u << 20));
  Rng rng(2009);
  std::vector<Hash256> committed;
  int failures = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string key = "key" + std::to_string(rng.Uniform(5));
    auto uid = db.PutMap(key, {{rng.NextString(8), rng.NextString(16)},
                               {rng.NextString(8), rng.NextString(16)}});
    if (uid.ok()) {
      committed.push_back(*uid);
    } else {
      ++failures;
      EXPECT_NE(uid.status().code(), StatusCode::kOk);
    }
  }
  EXPECT_GT(committed.size(), 0u);
  EXPECT_GT(failures, 0) << "fault schedule never hit a commit";
  stack.faults->Clear();
  for (const auto& uid : committed) {
    EXPECT_TRUE(db.GetVersion(uid).ok()) << uid.ToBase32();
    EXPECT_TRUE(db.Verify(uid).ok()) << uid.ToBase32();
  }
}

TEST(FaultInjectionTest, ScriptedShortReadAndTimeoutSurfaceCleanly) {
  FaultedStack stack(TierPolicy::kWriteThrough, 1011);
  stack.faults->Clear();  // scripted only
  auto chunk = Chunk::Make(ChunkType::kCell, Slice("payload"));
  ASSERT_TRUE(stack.tiered->Put(chunk).ok());
  // Evict the hot copy so reads must take the remote path.
  ASSERT_TRUE(stack.hot->Erase(std::vector<Hash256>{chunk.hash()}).ok());

  stack.faults->InjectOnce(FaultSchedule::Op::kGet,
                           {FaultSchedule::Kind::kShortRead});
  auto short_read = stack.tiered->Get(chunk.hash());
  ASSERT_FALSE(short_read.ok());
  EXPECT_EQ(short_read.status().code(), StatusCode::kIOError);
  EXPECT_NE(short_read.status().message().find("short read"),
            std::string::npos);

  stack.faults->InjectOnce(FaultSchedule::Op::kGet,
                           {FaultSchedule::Kind::kTimeout});
  auto timeout = stack.tiered->Get(chunk.hash());
  ASSERT_FALSE(timeout.ok());
  EXPECT_EQ(timeout.status().code(), StatusCode::kIOError);
  EXPECT_NE(timeout.status().message().find("timeout"), std::string::npos);

  // Both were transient conditions: the store is intact.
  auto ok = stack.tiered->Get(chunk.hash());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->bytes().ToString(), chunk.bytes().ToString());
}

}  // namespace
}  // namespace forkbase

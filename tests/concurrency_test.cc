// Thread-safety tests: concurrent chunk-store access, parallel ForkBase
// writers on distinct keys/branches, and concurrent readers during writes.
// Chunk immutability makes most of this easy — these tests guard the
// mutable edges (store maps, stats, branch table).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "chunk/caching_chunk_store.h"
#include "chunk/file_chunk_store.h"
#include "chunk/mem_chunk_store.h"
#include "postree/tree.h"
#include "store/forkbase.h"
#include "util/random.h"

namespace forkbase {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 200;

TEST(ConcurrencyTest, ParallelPutsToMemStore) {
  MemChunkStore store;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &failures, t] {
      Rng rng(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Half the chunks collide across threads (same content) to
        // exercise the dedup path concurrently.
        std::string payload = i % 2 ? rng.NextBytes(100)
                                    : "shared-" + std::to_string(i);
        Chunk chunk = Chunk::Make(ChunkType::kCell, payload);
        if (!store.Put(chunk).ok()) ++failures;
        auto got = store.Get(chunk.hash());
        if (!got.ok() || got->payload().ToString() != payload) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ChunkStoreStats stats = store.stats();
  EXPECT_EQ(stats.put_calls, static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(stats.chunk_count + stats.dedup_hits, stats.put_calls);
}

TEST(ConcurrencyTest, ParallelPutsThroughCache) {
  auto base = std::make_shared<MemChunkStore>();
  CachingChunkStore cache(base, 16 * 1024);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      Rng rng(100 + t);
      std::vector<Hash256> mine;
      for (int i = 0; i < kOpsPerThread; ++i) {
        Chunk chunk = Chunk::Make(ChunkType::kCell, rng.NextBytes(256));
        if (!cache.Put(chunk).ok()) ++failures;
        mine.push_back(chunk.hash());
        // Re-read a random earlier chunk (may be evicted -> base fetch).
        const Hash256& probe = mine[rng.Uniform(mine.size())];
        if (!cache.Get(probe).ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ShardedLruEvictionUnderConcurrentAccess) {
  // Small per-shard budgets force continuous eviction while all threads
  // hammer Get/Put across every shard. Guards the per-shard accounting
  // (resident_bytes, list/map agreement) under contention.
  auto base = std::make_shared<MemChunkStore>();
  CachingChunkStore cache(base, 32 * 1024, /*shards=*/8);
  ASSERT_EQ(cache.shard_count(), 8u);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      Rng rng(500 + t);
      std::vector<Hash256> mine;
      for (int i = 0; i < kOpsPerThread; ++i) {
        Chunk chunk = Chunk::Make(ChunkType::kCell, rng.NextBytes(512));
        if (!cache.Put(chunk).ok()) ++failures;
        mine.push_back(chunk.hash());
        // Batch-read a window of earlier chunks: some cached, most evicted
        // (refilled from base through the batched miss path).
        if (i % 8 == 7) {
          size_t n = std::min<size_t>(mine.size(), 16);
          std::vector<Hash256> probe(mine.end() - n, mine.end());
          for (const auto& r : cache.GetMany(probe)) {
            if (!r.ok()) ++failures;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto cstats = cache.cache_stats();
  EXPECT_GT(cstats.evictions, 0u);
  // Bound: capacity plus at most one max-sized chunk overshoot per shard
  // (each shard always retains its most recent insert).
  EXPECT_LE(cstats.resident_bytes, 32u * 1024u + 8u * 513u);
}

TEST(ConcurrencyTest, ConcurrentBatchedFileStoreOps) {
  const std::string dir = ::testing::TempDir() + "/fb_conc_batch";
  std::filesystem::remove_all(dir);
  auto store_or = FileChunkStore::Open(dir);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &failures, t] {
      Rng rng(900 + t);
      for (int round = 0; round < 10; ++round) {
        std::vector<Chunk> batch;
        for (int i = 0; i < 20; ++i) {
          // Half the content collides across threads to race the
          // append-lock re-check that prevents duplicate records.
          std::string payload =
              i % 2 ? rng.NextBytes(128)
                    : "shared-" + std::to_string(round) + "-" +
                          std::to_string(i);
          batch.push_back(Chunk::Make(ChunkType::kCell, payload));
        }
        if (!store.PutMany(batch).ok()) ++failures;
        std::vector<Hash256> ids;
        for (const auto& c : batch) ids.push_back(c.hash());
        auto results = store.GetMany(ids);
        for (size_t i = 0; i < results.size(); ++i) {
          if (!results[i].ok() ||
              results[i]->bytes().ToString() != batch[i].bytes().ToString()) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ChunkStoreStats stats = store.stats();
  EXPECT_EQ(stats.put_calls,
            static_cast<uint64_t>(kThreads) * 10u * 20u);
  // Every put either created a chunk or hit dedup; nothing was lost.
  EXPECT_EQ(stats.chunk_count + stats.dedup_hits, stats.put_calls);
  // Racing writers must not have appended duplicate records: with one
  // 40-byte header per record, the bytes on disk must equal exactly one
  // record per distinct chunk.
  uint64_t on_disk = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".fbc") on_disk += entry.file_size();
  }
  EXPECT_EQ(on_disk, stats.physical_bytes + 40u * stats.chunk_count);
  std::filesystem::remove_all(dir);
}

TEST(ConcurrencyTest, DedupRacePersistsNoDuplicateRecords) {
  // All threads put the SAME batch; after a reopen the on-disk record count
  // must equal the distinct chunk count.
  const std::string dir = ::testing::TempDir() + "/fb_dedup_race";
  std::filesystem::remove_all(dir);
  std::vector<Chunk> batch;
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    batch.push_back(Chunk::Make(ChunkType::kCell, rng.NextBytes(100)));
  }
  {
    auto store_or = FileChunkStore::Open(dir);
    ASSERT_TRUE(store_or.ok());
    auto& store = **store_or;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&store, &batch, &failures] {
        if (!store.PutMany(batch).ok()) ++failures;
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(store.stats().chunk_count, 50u);
  }
  // Duplicate appended records would show up directly in the segment size:
  // exactly 50 records of header (40) + tag+payload (101) must exist.
  EXPECT_EQ(std::filesystem::file_size(dir + "/segment-0.fbc"),
            50u * (40u + 101u));
  auto reopened_or = FileChunkStore::Open(dir);
  ASSERT_TRUE(reopened_or.ok());
  EXPECT_EQ((*reopened_or)->stats().chunk_count, 50u);
  std::filesystem::remove_all(dir);
}

TEST(ConcurrencyTest, ParallelForkBaseWritersDistinctKeys) {
  ForkBase db(std::make_shared<MemChunkStore>());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &failures, t] {
      std::string key = "key-" + std::to_string(t);
      for (int i = 0; i < 50; ++i) {
        if (!db.Put(key, Value::String("v" + std::to_string(i))).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db.ListKeys().size(), static_cast<size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    std::string key = "key-" + std::to_string(t);
    auto history = db.History(key);
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history->size(), 50u) << key;
    EXPECT_EQ(db.Get(key)->string_value(), "v49");
  }
}

TEST(ConcurrencyTest, ParallelBranchWritersOneKey) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ASSERT_TRUE(db.PutMap("shared", {{"seed", "0"}}).ok());
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(db.Branch("shared", "b" + std::to_string(t)).ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &failures, t] {
      std::string branch = "b" + std::to_string(t);
      for (int i = 0; i < 25; ++i) {
        auto map = db.GetMap("shared", branch);
        if (!map.ok()) {
          ++failures;
          return;
        }
        auto edited = map->Set("k" + std::to_string(t), std::to_string(i));
        if (!edited.ok() ||
            !db.Put("shared", Value::OfMap(edited->root()), branch).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    auto map = db.GetMap("shared", "b" + std::to_string(t));
    ASSERT_TRUE(map.ok());
    EXPECT_EQ(**map->Get("k" + std::to_string(t)), "24");
  }
}

TEST(ConcurrencyTest, ReadersDuringWrites) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  auto seed_kvs = std::vector<std::pair<std::string, std::string>>();
  Rng rng(55);
  for (int i = 0; i < 2000; ++i) {
    seed_kvs.emplace_back(rng.NextString(10), rng.NextString(10));
  }
  ASSERT_TRUE(db.PutMap("live", seed_kvs).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int i = 0; i < 100; ++i) {
      auto map = db.GetMap("live");
      if (!map.ok()) {
        ++failures;
        break;
      }
      auto edited = map->Set("hot-key", std::to_string(i));
      if (!edited.ok() ||
          !db.Put("live", Value::OfMap(edited->root())).ok()) {
        ++failures;
        break;
      }
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop) {
        auto map = db.GetMap("live");
        if (!map.ok()) {
          ++failures;
          return;
        }
        // A snapshot read must always see a consistent tree.
        auto size = map->Size();
        if (!size.ok() || *size < 2000) {
          ++failures;
          return;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(**db.GetMap("live")->Get("hot-key"), "99");
}

TEST(ConcurrencyTest, GroupCommitSameBranchLinearizesRacingPuts) {
  // N threads hammer Put on ONE key+branch. With the group-commit queue,
  // bases are resolved at drain time, so every commit chains onto the
  // previous one: the final history must contain all N*M versions, ending
  // at the published head — a linearizable total order, not
  // last-writer-wins.
  const std::string dir = ::testing::TempDir() + "/fb_group_same_branch";
  std::filesystem::remove_all(dir);
  constexpr int kWriters = 4;
  constexpr int kCommits = 50;
  std::vector<Hash256> uids[kWriters];
  {
    ForkBase::OpenOptions open;
    open.options.group_commit = true;
    auto db_or = ForkBase::OpenPersistent(dir, open);
    ASSERT_TRUE(db_or.ok());
    ForkBase& db = **db_or;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kWriters; ++t) {
      threads.emplace_back([&db, &failures, &uids, t] {
        for (int i = 0; i < kCommits; ++i) {
          auto uid = db.Put("hot", Value::String(std::to_string(t * 1000 + i)));
          if (uid.ok()) {
            uids[t].push_back(*uid);
          } else {
            ++failures;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0);

    auto history = db.History("hot");
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history->size(),
              static_cast<size_t>(kWriters) * kCommits);
    std::unordered_set<Hash256, Hash256Hasher> in_history;
    for (const auto& info : *history) in_history.insert(info.uid);
    for (int t = 0; t < kWriters; ++t) {
      for (const auto& uid : uids[t]) {
        EXPECT_TRUE(in_history.count(uid)) << "lost commit of writer " << t;
      }
    }
    // Within one writer, its own commits appear in program order along the
    // chain (a writer only enqueues its next Put after the previous one
    // returned, so drain order respects per-thread order).
    std::unordered_map<Hash256, size_t, Hash256Hasher> depth;
    for (size_t i = 0; i < history->size(); ++i) {
      depth[(*history)[i].uid] = history->size() - i;
    }
    for (int t = 0; t < kWriters; ++t) {
      for (size_t i = 1; i < uids[t].size(); ++i) {
        EXPECT_LT(depth[uids[t][i - 1]], depth[uids[t][i]]);
      }
    }
    EXPECT_EQ(db.Head("hot")->ToBase32(), history->front().uid.ToBase32());
    EXPECT_EQ(db.Stat().commits,
              static_cast<uint64_t>(kWriters) * kCommits);
  }
  std::filesystem::remove_all(dir);
}

TEST(ConcurrencyTest, GroupCommitDistinctBranchesKeepIndependentChains) {
  const std::string dir = ::testing::TempDir() + "/fb_group_branches";
  std::filesystem::remove_all(dir);
  constexpr int kWriters = 4;
  constexpr int kCommits = 40;
  {
    ForkBase::OpenOptions open;
    open.options.group_commit = true;
    open.options.group_commit_max_batch = 8;  // force multi-drain groups
    auto db_or = ForkBase::OpenPersistent(dir, open);
    ASSERT_TRUE(db_or.ok());
    ForkBase& db = **db_or;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    std::vector<Hash256> last(kWriters);
    for (int t = 0; t < kWriters; ++t) {
      threads.emplace_back([&db, &failures, &last, t] {
        const std::string branch = "b" + std::to_string(t);
        for (int i = 0; i < kCommits; ++i) {
          auto uid = db.Put("key", Value::String(std::to_string(i)), branch);
          if (!uid.ok()) {
            ++failures;
            return;
          }
          last[t] = *uid;
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0);
    for (int t = 0; t < kWriters; ++t) {
      const std::string branch = "b" + std::to_string(t);
      auto history = db.History("key", branch);
      ASSERT_TRUE(history.ok());
      EXPECT_EQ(history->size(), static_cast<size_t>(kCommits)) << branch;
      EXPECT_EQ(history->front().uid, last[t]) << branch;
      EXPECT_EQ(db.Get("key", branch)->string_value(),
                std::to_string(kCommits - 1));
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(ConcurrencyTest, ScalarCommitDistinctBranchesStillSafe) {
  // Group commit OFF: racing writers on distinct branches of one key must
  // still each see a full private chain (the scalar path's contract).
  ForkBase db(std::make_shared<MemChunkStore>());  // group_commit off
  constexpr int kWriters = 4;
  constexpr int kCommits = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&db, &failures, t] {
      const std::string branch = "b" + std::to_string(t);
      for (int i = 0; i < kCommits; ++i) {
        if (!db.Put("key", Value::String(std::to_string(i)), branch).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kWriters; ++t) {
    auto history = db.History("key", "b" + std::to_string(t));
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history->size(), static_cast<size_t>(kCommits));
  }
}

TEST(ConcurrencyTest, ConcurrentAsyncScansShareOnePrefetchPool) {
  // Multiple cursors double-buffering through the same store's pool: every
  // scan must see its full, ordered entry stream.
  const std::string dir = ::testing::TempDir() + "/fb_conc_scan";
  std::filesystem::remove_all(dir);
  {
    FileChunkStore::Options options;
    options.prefetch_threads = 1;  // bare stores default to synchronous
    auto store_or = FileChunkStore::Open(dir, options);
    ASSERT_TRUE(store_or.ok());
    auto& store = **store_or;
    std::map<std::string, std::string> sorted;
    Rng rng(321);
    while (sorted.size() < 4000) {
      sorted[rng.NextString(12)] = rng.NextString(16);
    }
    std::vector<std::pair<std::string, std::string>> kvs(sorted.begin(),
                                                         sorted.end());
    auto built = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
    ASSERT_TRUE(built.ok());
    PosTree tree(&store, ChunkType::kMapLeaf, built->root);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&tree, &kvs, &failures] {
        size_t i = 0;
        Status s = tree.Scan([&](const EntryView& e) {
          if (i >= kvs.size() || e.key.ToString() != kvs[i].first) {
            return Status::Corruption("out-of-order scan");
          }
          ++i;
          return Status::OK();
        });
        if (!s.ok() || i != kvs.size()) ++failures;
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace forkbase

// Durability fuzz: a randomized multi-session workload against a
// file-backed ForkBase — puts, branches, merges, schema edits — with the
// process "restarting" (store reopened, branch table reloaded) between
// sessions, and a final full verification sweep. A shadow model in memory
// checks every read.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "chunk/file_chunk_store.h"
#include "chunk/remote_chunk_store.h"
#include "chunk/tiered_chunk_store.h"
#include "store/forkbase.h"
#include "util/random.h"

namespace forkbase {
namespace {

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fb_durability";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<ForkBase> Open() {
    auto store_or = FileChunkStore::Open(dir_);
    EXPECT_TRUE(store_or.ok());
    auto db = std::make_unique<ForkBase>(
        std::shared_ptr<ChunkStore>(std::move(*store_or)));
    std::ifstream probe(dir_ + "/branches.tsv");
    if (probe) {
      EXPECT_TRUE(db->branches().LoadFromFile(dir_ + "/branches.tsv").ok());
    }
    return db;
  }
  void Close(ForkBase* db) {
    EXPECT_TRUE(db->branches().SaveToFile(dir_ + "/branches.tsv").ok());
  }

  std::string dir_;
};

TEST_F(DurabilityTest, RandomWorkloadSurvivesManyReopens) {
  // Shadow model: (key, branch) -> map<string,string> content.
  std::map<std::pair<std::string, std::string>,
           std::map<std::string, std::string>>
      shadow;
  Rng rng(2026);
  const std::vector<std::string> keys = {"alpha", "beta", "gamma"};

  for (int session = 0; session < 6; ++session) {
    auto db = Open();
    for (int op = 0; op < 40; ++op) {
      const std::string& key = keys[rng.Uniform(keys.size())];
      auto branches_of = [&]() {
        std::vector<std::string> out;
        for (const auto& [kb, content] : shadow) {
          (void)content;
          if (kb.first == key) out.push_back(kb.second);
        }
        return out;
      };
      auto existing = branches_of();
      const uint64_t action = rng.Uniform(10);
      if (existing.empty() || action < 2) {
        // Fresh put on master.
        std::map<std::string, std::string> content;
        for (int i = 0; i < 20; ++i) {
          content["k" + std::to_string(rng.Uniform(100))] =
              rng.NextString(12);
        }
        std::vector<std::pair<std::string, std::string>> kvs(content.begin(),
                                                             content.end());
        ASSERT_TRUE(db->PutMap(key, kvs).ok());
        shadow[{key, "master"}] = content;
      } else if (action < 7) {
        // Edit a random existing branch.
        const std::string& branch = existing[rng.Uniform(existing.size())];
        std::string k = "k" + std::to_string(rng.Uniform(100));
        std::string v = rng.NextString(12);
        ASSERT_TRUE(
            db->UpdateMap(key, {KeyedOp{k, v}}, branch).ok());
        shadow[{key, branch}][k] = v;
      } else if (action < 9 && existing.size() < 4) {
        // Fork a new branch.
        const std::string& from = existing[rng.Uniform(existing.size())];
        std::string to = "b" + std::to_string(rng.Uniform(1000));
        if (db->Branch(key, to, from).ok()) {
          shadow[{key, to}] = shadow[{key, from}];
        }
      } else {
        // Read-validate a random branch against the shadow model.
        const std::string& branch = existing[rng.Uniform(existing.size())];
        auto map = db->GetMap(key, branch);
        ASSERT_TRUE(map.ok()) << key << "@" << branch;
        auto entries = map->Entries();
        ASSERT_TRUE(entries.ok());
        const auto& expected = shadow[{key, branch}];
        ASSERT_EQ(entries->size(), expected.size()) << key << "@" << branch;
        for (const auto& [k, v] : *entries) {
          auto it = expected.find(k);
          ASSERT_NE(it, expected.end());
          ASSERT_EQ(it->second, v);
        }
      }
    }
    Close(db.get());
    // db destroyed here — simulated process exit.
  }

  // Final session: everything must still be present, correct, verifiable.
  auto db = Open();
  size_t verified = 0;
  for (const auto& [kb, expected] : shadow) {
    auto map = db->GetMap(kb.first, kb.second);
    ASSERT_TRUE(map.ok()) << kb.first << "@" << kb.second;
    auto entries = map->Entries();
    ASSERT_TRUE(entries.ok());
    std::map<std::string, std::string> got(entries->begin(), entries->end());
    EXPECT_EQ(got, expected) << kb.first << "@" << kb.second;
    auto head = db->Head(kb.first, kb.second);
    ASSERT_TRUE(head.ok());
    EXPECT_TRUE(db->Verify(*head).ok()) << kb.first << "@" << kb.second;
    ++verified;
  }
  EXPECT_GE(verified, 3u);
  // Histories stayed intact across sessions.
  for (const auto& key : keys) {
    if (!db->branches().Exists(key, "master")) continue;
    auto history = db->History(key);
    ASSERT_TRUE(history.ok());
    EXPECT_GE(history->size(), 1u);
  }
}

TEST_F(DurabilityTest, GroupCommitRunsAreCrashDurable) {
  // Racing grouped commits, then a simulated crash that tears the tail of
  // the active segment. Recovery must keep every commit whose Put returned
  // OK: group-commit publishes heads only after its PutMany flushed, so the
  // torn bytes can only be the garbage we appended — never a returned uid.
  std::vector<Hash256> returned;
  {
    ForkBase::OpenOptions open;
    open.options.group_commit = true;
    auto db_or = ForkBase::OpenPersistent(dir_, open);
    ASSERT_TRUE(db_or.ok());
    ForkBase& db = **db_or;
    std::mutex mu;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&db, &mu, &returned, t] {
        for (int i = 0; i < 25; ++i) {
          auto uid = db.Put("crash-key",
                            Value::String(std::to_string(t * 100 + i)),
                            "b" + std::to_string(t));
          ASSERT_TRUE(uid.ok());
          std::lock_guard<std::mutex> lock(mu);
          returned.push_back(*uid);
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_TRUE(db.branches().SaveToFile(dir_ + "/branches.tsv").ok());
    // db drops here WITHOUT any explicit flush beyond what Put guaranteed.
  }
  // Tear the tail: a partial record (valid magic, truncated payload), as a
  // crash mid-append would leave.
  {
    std::ofstream seg(dir_ + "/segment-0.fbc",
                      std::ios::binary | std::ios::app);
    const uint32_t magic = 0x46424331;
    seg.write(reinterpret_cast<const char*>(&magic), 4);
    seg.write("torn", 4);
  }
  auto db = Open();
  for (const auto& uid : returned) {
    EXPECT_TRUE(db->GetVersion(uid).ok()) << uid.ToBase32();
    EXPECT_TRUE(db->Verify(uid).ok()) << uid.ToBase32();
  }
  for (int t = 0; t < 4; ++t) {
    auto history = db->History("crash-key", "b" + std::to_string(t));
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history->size(), 25u);
  }
}

TEST_F(DurabilityTest, CrashDuringDemotionLeavesEveryChunkReachable) {
  // Write-back tiering, then a "kill" mid write-back: the demotion drain
  // dies after landing only a prefix of its batches on the cold tier (a
  // scripted remote fault models the process dying between round trips,
  // since a real kill can land anywhere a fault can), and the cold tier's
  // active segment additionally takes a torn tail. Recovery must find every
  // acknowledged chunk in at least one tier — the hot tier still holds what
  // never demoted (torn-tail recovery already covers hot-tier appends) —
  // and, with the persistent dirty manifest beside the hot segments, the
  // reopened store must know exactly which chunks still owe a demotion and
  // finish the job.
  const std::string cold_dir = ::testing::TempDir() + "/fb_durability_cold";
  std::filesystem::remove_all(cold_dir);
  auto faults = std::make_shared<FaultSchedule>();

  auto open_tiered = [&]() -> std::shared_ptr<TieredChunkStore> {
    auto hot_or = FileChunkStore::Open(dir_);
    EXPECT_TRUE(hot_or.ok());
    auto cold_or = FileChunkStore::Open(cold_dir);
    EXPECT_TRUE(cold_or.ok());
    RemoteChunkStore::Options remote_options;
    remote_options.faults = faults;
    auto cold = std::make_shared<RemoteChunkStore>(
        std::shared_ptr<ChunkStore>(std::move(*cold_or)), remote_options);
    auto manifest_or = DirtyManifest::Open(dir_);
    EXPECT_TRUE(manifest_or.ok());
    TieredChunkStore::Options tier_options;
    tier_options.policy = TierPolicy::kWriteBack;
    tier_options.background_demotion = false;  // the test is the drain
    tier_options.demote_batch = 16;
    tier_options.dirty_manifest = std::move(*manifest_or);
    return std::make_shared<TieredChunkStore>(
        std::shared_ptr<ChunkStore>(std::move(*hot_or)), std::move(cold),
        tier_options);
  };

  std::vector<Hash256> returned;
  {
    auto tiered = open_tiered();
    ForkBase db(tiered);
    for (int i = 0; i < 60; ++i) {
      auto uid = db.Put("demote-key", Value::String("v" + std::to_string(i)),
                        "b" + std::to_string(i % 3));
      ASSERT_TRUE(uid.ok());
      returned.push_back(*uid);
    }
    ASSERT_TRUE(db.branches().SaveToFile(dir_ + "/branches.tsv").ok());
    // The drain dies after its second cold round trip.
    faults->InjectOnce(FaultSchedule::Op::kPutBatch,
                       {FaultSchedule::Kind::kTransient}, /*skip=*/2);
    Status flush = tiered->FlushColdTier();
    ASSERT_FALSE(flush.ok()) << "fault schedule never fired";
    auto stats = tiered->tier_stats();
    EXPECT_GT(stats.demotions, 0u) << "no batch landed before the crash";
    EXPECT_GT(stats.dirty_pending, 0u) << "nothing left undemoted";
    // Simulated kill: the stack is torn down with faults still armed, so
    // the destructor's best-effort flush dies on the same schedule instead
    // of quietly completing the demotion.
    faults->InjectOnce(FaultSchedule::Op::kPutBatch,
                       {FaultSchedule::Kind::kTransient});
  }
  // The crash also tore the tail of the cold tier's active segment.
  {
    std::ofstream seg(cold_dir + "/segment-0.fbc",
                      std::ios::binary | std::ios::app);
    const uint32_t magic = 0x46424331;
    seg.write(reinterpret_cast<const char*>(&magic), 4);
    seg.write("torn", 4);
  }

  faults->Clear();
  auto tiered = open_tiered();
  // Manifest replay: the reopened store knows exactly which chunks the
  // crashed drain never landed — no guessing from tier contents.
  const std::vector<Hash256> owed = tiered->manifest()->DirtyIds();
  ASSERT_FALSE(owed.empty()) << "manifest lost the crashed drain's debt";
  EXPECT_EQ(tiered->tier_stats().dirty_pending, owed.size());
  for (const auto& id : owed) {
    EXPECT_FALSE(tiered->cold()->Contains(id)) << "already demoted: not owed";
  }

  ForkBase db(tiered);
  ASSERT_TRUE(db.branches().LoadFromFile(dir_ + "/branches.tsv").ok());
  for (const auto& uid : returned) {
    EXPECT_TRUE(db.GetVersion(uid).ok()) << uid.ToBase32();
    EXPECT_TRUE(db.Verify(uid).ok()) << uid.ToBase32();
  }
  for (int b = 0; b < 3; ++b) {
    auto history = db.History("demote-key", "b" + std::to_string(b));
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history->size(), 20u);
  }

  // Resumed demotion finishes the crashed drain's work: every owed chunk
  // reaches the cold tier, verified by cold-tier round trips (the cold
  // store serves each one directly, bypassing the hot tier), and the
  // manifest's debt drops to zero.
  const uint64_t demoted_before = tiered->tier_stats().demotions;
  ASSERT_TRUE(tiered->FlushColdTier().ok());
  EXPECT_EQ(tiered->tier_stats().demotions - demoted_before, owed.size());
  size_t cold_round_trips = 0;
  for (const auto& id : owed) {
    auto got = tiered->cold()->Get(id);
    ASSERT_TRUE(got.ok()) << id.ToBase32();
    EXPECT_EQ(got->hash(), id);
    ++cold_round_trips;
  }
  EXPECT_EQ(cold_round_trips, owed.size());
  EXPECT_EQ(tiered->manifest()->dirty_count(), 0u);
  EXPECT_EQ(tiered->tier_stats().dirty_pending, 0u);
  std::filesystem::remove_all(cold_dir);
}

TEST_F(DurabilityTest, ColdCacheReadsAfterReopen) {
  Hash256 head;
  {
    auto db = Open();
    std::vector<std::pair<std::string, std::string>> kvs;
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
      kvs.emplace_back(rng.NextString(12), rng.NextString(24));
    }
    ASSERT_TRUE(db->PutMap("big", kvs).ok());
    head = *db->Head("big");
    Close(db.get());
  }
  auto db = Open();
  // Point lookups straight off disk.
  auto map = db->GetMap("big");
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(*map->Size(), 10000u);
  EXPECT_TRUE(db->Verify(head).ok());
}

}  // namespace
}  // namespace forkbase

// Tests for the garbage collector: mark reachability, copy collection,
// garbage identification after branch deletion, history retention, and the
// in-place sweep (space reclaim, racing commits, resurrection guard).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <unordered_set>

#include "chunk/file_chunk_store.h"
#include "chunk/mem_chunk_store.h"
#include "chunk/tiered_chunk_store.h"
#include "store/gc.h"
#include "util/datagen.h"
#include "util/random.h"

namespace forkbase {
namespace {

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

TEST(GcTest, MarkLiveCoversValueTreeAndHistory) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  auto v1 = db.PutMap("k", {{"a", "1"}, {"b", "2"}});
  auto v2 = db.PutMap("k", {{"a", "1"}, {"b", "3"}});
  ASSERT_TRUE(v1.ok() && v2.ok());
  auto live = MarkLive(*store, {*v2});
  ASSERT_TRUE(live.ok());
  // Both FNodes (history!) plus both map roots must be live.
  EXPECT_TRUE(live->count(*v1));
  EXPECT_TRUE(live->count(*v2));
  auto map1 = db.GetVersion(*v1);
  auto map2 = db.GetVersion(*v2);
  ASSERT_TRUE(map1.ok() && map2.ok());
  EXPECT_TRUE(live->count(map1->root()));
  EXPECT_TRUE(live->count(map2->root()));
}

TEST(GcTest, MarkLiveFailsOnMissingRoot) {
  MemChunkStore store;
  EXPECT_FALSE(MarkLive(store, {Sha256(Slice("ghost"))}).ok());
}

TEST(GcTest, NoGarbageWhileEverythingReferenced) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 500;
  ASSERT_TRUE(db.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  ASSERT_TRUE(db.Branch("ds", "dev").ok());
  auto garbage = FindGarbage(db);
  ASSERT_TRUE(garbage.ok());
  EXPECT_TRUE(garbage->empty());
}

TEST(GcTest, DeletedBranchCreatesGarbage) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 1000;
  ASSERT_TRUE(db.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  ASSERT_TRUE(db.Branch("ds", "scratch").ok());
  // Large divergent edit on the scratch branch.
  auto table = db.GetTable("ds", "scratch");
  ASSERT_TRUE(table.ok());
  FTable current = *table;
  for (int i = 0; i < 200; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "r%08d", i);
    auto next = current.UpdateCell(key, 2, "scratch-" + std::to_string(i));
    ASSERT_TRUE(next.ok());
    current = *next;
  }
  ASSERT_TRUE(
      db.Put("ds", Value::OfTable(current.id()), "scratch").ok());

  auto garbage_before = FindGarbage(db);
  ASSERT_TRUE(garbage_before.ok());
  // Intermediate FTable states of the loop are unreferenced already.
  ASSERT_TRUE(db.DeleteBranch("ds", "scratch").ok());
  auto garbage_after = FindGarbage(db);
  ASSERT_TRUE(garbage_after.ok());
  EXPECT_GT(garbage_after->size(), garbage_before->size())
      << "dropping the branch must strand its divergent chunks";
}

TEST(GcTest, CopyLivePreservesAllHeadsAndHistory) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 800;
  ASSERT_TRUE(db.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  ASSERT_TRUE(db.Branch("ds", "dev").ok());
  auto t = db.GetTable("ds", "dev");
  ASSERT_TRUE(t.ok());
  auto edited = t->UpdateCell("r00000400", 1, "dev-edit");
  ASSERT_TRUE(edited.ok());
  ASSERT_TRUE(db.Put("ds", Value::OfTable(edited->id()), "dev").ok());
  // Strand some chunks.
  ASSERT_TRUE(db.PutMap("temp", {{"x", "y"}}).ok());
  ASSERT_TRUE(db.DeleteBranch("temp", "master").ok());

  auto dst = std::make_shared<MemChunkStore>();
  auto stats = CopyLive(db, dst.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->garbage_chunks(), 0u);
  EXPECT_LT(stats->live_chunks, stats->total_chunks);

  // Rebuild a ForkBase over the compacted store: all heads verify.
  ForkBase compacted(dst);
  compacted.branches().SetHead("ds", "master", *db.Head("ds", "master"));
  compacted.branches().SetHead("ds", "dev", *db.Head("ds", "dev"));
  EXPECT_TRUE(compacted.Verify(*compacted.Head("ds", "master")).ok());
  EXPECT_TRUE(compacted.Verify(*compacted.Head("ds", "dev")).ok());
  auto dev_table = compacted.GetTable("ds", "dev");
  ASSERT_TRUE(dev_table.ok());
  EXPECT_EQ(**dev_table->GetCell("r00000400", 1), "dev-edit");
}

TEST(GcTest, CopyLiveIsIdempotent) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  ASSERT_TRUE(db.PutMap("k", {{"a", "1"}}).ok());
  auto dst = std::make_shared<MemChunkStore>();
  auto s1 = CopyLive(db, dst.get());
  ASSERT_TRUE(s1.ok());
  uint64_t chunks_after_first = dst->stats().chunk_count;
  auto s2 = CopyLive(db, dst.get());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(dst->stats().chunk_count, chunks_after_first);
}

TEST(GcTest, SharedChunksSurviveWhenOneReferenceDies) {
  // Two keys share content; deleting one key must not orphan the shared
  // chunks of the other.
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 600;
  CsvDocument doc = GenerateCsv(opts);
  ASSERT_TRUE(db.PutTableFromCsv("a", doc).ok());
  ASSERT_TRUE(db.PutTableFromCsv("b", doc).ok());  // shares all data chunks
  ASSERT_TRUE(db.DeleteBranch("a", "master").ok());

  auto dst = std::make_shared<MemChunkStore>();
  auto stats = CopyLive(db, dst.get());
  ASSERT_TRUE(stats.ok());
  ForkBase survivor(dst);
  survivor.branches().SetHead("b", "master", *db.Head("b", "master"));
  EXPECT_TRUE(survivor.Verify(*survivor.Head("b")).ok());
  auto table = survivor.GetTable("b");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table->NumRows(), 600u);
}

TEST(GcStatsTest, GarbageGettersClampAtZero) {
  // Snapshot semantics: live can legitimately exceed a stale total (e.g.
  // CopyLive destination totals while a writer appends). The getters must
  // clamp instead of wrapping to ~2^64.
  GcStats stats;
  stats.total_chunks = 3;
  stats.live_chunks = 5;
  stats.total_bytes = 100;
  stats.live_bytes = 400;
  EXPECT_EQ(stats.garbage_chunks(), 0u);
  EXPECT_EQ(stats.garbage_bytes(), 0u);
  stats.live_chunks = 1;
  stats.live_bytes = 40;
  EXPECT_EQ(stats.garbage_chunks(), 2u);
  EXPECT_EQ(stats.garbage_bytes(), 60u);
}

TEST(GcTest, CopyLiveReadsEachLiveChunkExactlyOnce) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 400;
  ASSERT_TRUE(db.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  ASSERT_TRUE(db.PutMap("temp", {{"x", "y"}}).ok());
  ASSERT_TRUE(db.DeleteBranch("temp", "master").ok());

  auto dst = std::make_shared<MemChunkStore>();
  const uint64_t reads_before = store->stats().get_calls;
  auto stats = CopyLive(db, dst.get());
  ASSERT_TRUE(stats.ok());
  const uint64_t reads = store->stats().get_calls - reads_before;
  // The copy rides the mark's read and the totals come from an index walk,
  // so the source serves exactly one read per live chunk — garbage bodies
  // are never fetched.
  EXPECT_EQ(reads, stats->live_chunks);
  EXPECT_GT(stats->garbage_chunks(), 0u);
  EXPECT_EQ(dst->stats().chunk_count, stats->live_chunks);
}

TEST(GcTest, FindGarbageNeverReadsGarbageBodies) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 400;
  ASSERT_TRUE(db.PutTableFromCsv("keep", GenerateCsv(opts)).ok());
  opts.seed = 99;
  ASSERT_TRUE(db.PutTableFromCsv("drop", GenerateCsv(opts)).ok());
  ASSERT_TRUE(db.DeleteBranch("drop", "master").ok());

  const uint64_t reads_before = store->stats().get_calls;
  auto garbage = FindGarbage(db);
  ASSERT_TRUE(garbage.ok());
  ASSERT_FALSE(garbage->empty());
  const uint64_t reads = store->stats().get_calls - reads_before;
  auto live = MarkLive(*store, {*db.Head("keep")});
  ASSERT_TRUE(live.ok());
  // One read per live chunk for the mark, then a pure index walk: the
  // (possibly huge) garbage side costs zero chunk fetches.
  EXPECT_EQ(reads, live->size())
      << "garbage identification must not load garbage chunk bodies";
}

TEST(GcTest, SweepInPlaceReclaimsAndKeepsSurvivorsReadable) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 500;
  ASSERT_TRUE(db.PutTableFromCsv("keep", GenerateCsv(opts)).ok());
  ASSERT_TRUE(db.PutMap("dead", {{"doomed", "bytes"}}).ok());
  ASSERT_TRUE(db.DeleteBranch("dead", "master").ok());

  auto stats = SweepInPlace(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->swept_chunks, 0u);
  EXPECT_EQ(stats->swept_chunks, stats->garbage_chunks());
  EXPECT_EQ(stats->swept_bytes, stats->garbage_bytes());
  EXPECT_EQ(store->stats().chunk_count, stats->live_chunks);

  // Survivors stay bit-exact (Verify re-derives every covering hash).
  EXPECT_TRUE(db.Verify(*db.Head("keep")).ok());
  auto table = db.GetTable("keep");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table->NumRows(), 500u);

  // Re-putting previously swept content must work: content addressing
  // regenerates the same ids into free space.
  ASSERT_TRUE(db.PutMap("reborn", {{"doomed", "bytes"}}).ok());
  EXPECT_TRUE(db.Verify(*db.Head("reborn")).ok());
  auto reborn = db.GetMap("reborn");
  ASSERT_TRUE(reborn.ok());
  EXPECT_EQ(**reborn->Get("doomed"), "bytes");

  // A second sweep over the now-clean store is a no-op.
  auto again = SweepInPlace(&db);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->swept_chunks, 0u);
}

TEST(GcTest, SweepInPlaceShrinksFileStoreDisk) {
  const std::string dir = ::testing::TempDir() + "/fb_gc_sweep_file";
  std::filesystem::remove_all(dir);
  FileChunkStore::Options fopts;
  fopts.segment_bytes = 4096;  // many small segments → fine-grained reclaim
  fopts.maintenance_threads = 2;
  Hash256 keep_head;
  {
    auto fstore_or = FileChunkStore::Open(dir, fopts);
    ASSERT_TRUE(fstore_or.ok());
    std::shared_ptr<FileChunkStore> fstore(std::move(*fstore_or));
    ForkBase db(fstore);

    CsvGenOptions opts;
    opts.num_rows = 300;
    ASSERT_TRUE(db.PutTableFromCsv("keep", GenerateCsv(opts)).ok());
    opts.seed = 7;
    opts.num_rows = 2000;
    ASSERT_TRUE(db.PutTableFromCsv("bulk", GenerateCsv(opts)).ok());
    ASSERT_TRUE(db.DeleteBranch("bulk", "master").ok());
    const uint64_t before = fstore->space_used();

    auto stats = SweepInPlace(&db);
    ASSERT_TRUE(stats.ok());
    fstore->WaitForMaintenance();  // db constructed directly, not Open()ed

    // Disk shrinks toward the live-byte total. Slack: per-record headers,
    // the tombstone journal, and a few not-yet-rolled segments.
    const uint64_t after = fstore->space_used();
    EXPECT_LT(after, before);
    EXPECT_LE(after, stats->live_bytes + stats->live_chunks * 64 +
                         4 * fopts.segment_bytes)
        << "space_used must approach the live total within segment slack";

    EXPECT_TRUE(db.Verify(*db.Head("keep")).ok());
    auto table = db.GetTable("keep");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ(*table->NumRows(), 300u);
    keep_head = *db.Head("keep");
  }

  // Survivors must also be intact on disk, not just in the index: reopen.
  auto reopened_or = FileChunkStore::Open(dir, fopts);
  ASSERT_TRUE(reopened_or.ok());
  ForkBase reopened_db(std::shared_ptr<FileChunkStore>(
      std::move(*reopened_or)));
  reopened_db.branches().SetHead("keep", "master", keep_head);
  EXPECT_TRUE(reopened_db.Verify(keep_head).ok());
  std::filesystem::remove_all(dir);
}

TEST(GcTest, SweepInPlaceReclaimsTieredWriteBackStack) {
  // The full production shape: bounded write-back hot tier over a cold
  // FileChunkStore, opened through ForkBase::Open. The sweep must be
  // tier-aware — reclaim disk on both tiers and leave survivors bit-exact.
  const std::string hot_dir = ::testing::TempDir() + "/fb_gc_tier_hot";
  const std::string cold_dir = ::testing::TempDir() + "/fb_gc_tier_cold";
  std::filesystem::remove_all(hot_dir);
  std::filesystem::remove_all(cold_dir);
  ForkBase::Config config;
  config.segment_bytes = 4096;
  config.maintenance_threads = 2;
  config.tier.cold_dir = cold_dir;
  config.tier.write_back = true;
  config.tier.hot_bytes_budget = 256 * 1024;
  auto db_or = ForkBase::Open(hot_dir, config);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  ForkBase& db = **db_or;

  CsvGenOptions opts;
  opts.num_rows = 200;
  ASSERT_TRUE(db.PutTableFromCsv("keep", GenerateCsv(opts)).ok());
  opts.seed = 5;
  opts.num_rows = 1500;
  ASSERT_TRUE(db.PutTableFromCsv("bulk", GenerateCsv(opts)).ok());
  // Demote everything so the garbage is cold-resident (and partly evicted
  // from the bounded hot tier), then put fresh dirty garbage on top.
  ASSERT_NE(db.tiered(), nullptr);
  ASSERT_TRUE(db.tiered()->FlushColdTier().ok());
  ASSERT_TRUE(db.PutMap("scratch", {{"dirty", "garbage"}}).ok());
  ASSERT_TRUE(db.DeleteBranch("bulk", "master").ok());
  ASSERT_TRUE(db.DeleteBranch("scratch", "master").ok());
  const uint64_t before = DirBytes(hot_dir) + DirBytes(cold_dir);

  auto stats = SweepInPlace(&db);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->swept_chunks, 0u);
  const uint64_t after = DirBytes(hot_dir) + DirBytes(cold_dir);
  EXPECT_LT(after, before) << "sweep must reclaim disk across both tiers";

  EXPECT_TRUE(db.Verify(*db.Head("keep")).ok());
  auto table = db.GetTable("keep");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table->NumRows(), 200u);
  std::filesystem::remove_all(hot_dir);
  std::filesystem::remove_all(cold_dir);
}

// ------------------------------------------------- delta-base liveness --

TEST(GcTest, ExpandPhysicalBasesCoversTheWholeChain) {
  const std::string dir = ::testing::TempDir() + "/fb_gc_expand_bases";
  std::filesystem::remove_all(dir);
  FileChunkStore::Options fopts;
  fopts.delta_chain_depth = 4;
  fopts.delta_window = 8;
  auto fstore_or = FileChunkStore::Open(dir, fopts);
  ASSERT_TRUE(fstore_or.ok());
  auto& fstore = **fstore_or;

  // A linear version history that the store stores as a delta chain.
  Rng rng(41);
  std::string payload = rng.NextString(1024);
  std::vector<Chunk> chain;
  for (int v = 0; v < 4; ++v) {
    if (v > 0) payload[rng.Uniform(payload.size())] ^= 0x5a;
    chain.push_back(Chunk::Make(ChunkType::kCell, payload));
  }
  ASSERT_TRUE(fstore.PutMany(chain).ok());
  ChunkStore::PhysicalRecord rec;
  ASSERT_TRUE(fstore.GetPhysicalRecord(chain.back().hash(), &rec));
  ASSERT_EQ(rec.encoding, ChunkStore::Encoding::kDelta);

  // Only the newest version is logically live; the expansion must pull in
  // every transitive base, or erasing "garbage" would strand the chain.
  std::unordered_set<Hash256, Hash256Hasher> live{chain.back().hash()};
  size_t added = ExpandPhysicalBases(fstore, &live);
  EXPECT_GT(added, 0u);
  for (const auto& c : chain) {
    EXPECT_TRUE(live.count(c.hash()))
        << "base chain member missing from expanded live set";
  }
  std::filesystem::remove_all(dir);
}

TEST(GcTest, FindGarbageNeverReportsALiveChunksDeltaBase) {
  const std::string dir = ::testing::TempDir() + "/fb_gc_delta_garbage";
  std::filesystem::remove_all(dir);
  FileChunkStore::Options fopts;
  fopts.delta_chain_depth = 4;
  fopts.delta_window = 16;
  auto fstore_or = FileChunkStore::Open(dir, fopts);
  ASSERT_TRUE(fstore_or.ok());
  std::shared_ptr<FileChunkStore> fstore(std::move(*fstore_or));
  ForkBase db(fstore);

  // Two near-identical datasets written back-to-back, so the survivor's
  // leaves may be delta-encoded against the doomed dataset's leaves.
  CsvGenOptions opts;
  opts.num_rows = 400;
  CsvDocument csv = GenerateCsv(opts);
  ASSERT_TRUE(db.PutTableFromCsv("dead", csv).ok());
  ASSERT_TRUE(
      db.PutTableFromCsv("keep", EditOneWord(csv, 200, 1, "edited")).ok());
  ASSERT_TRUE(db.DeleteBranch("dead", "master").ok());

  auto garbage = FindGarbage(db);
  ASSERT_TRUE(garbage.ok());
  std::unordered_set<Hash256, Hash256Hasher> garbage_set(garbage->begin(),
                                                           garbage->end());
  // The contract under test: no chunk that survives may have its delta base
  // in the garbage set — whatever chains the writer happened to form.
  fstore->ForEachId([&](const Hash256& id, size_t) {
    if (garbage_set.count(id)) return;
    Hash256 base;
    if (fstore->GetDeltaBase(id, &base)) {
      EXPECT_FALSE(garbage_set.count(base))
          << "live chunk's delta base reported as garbage";
    }
  });

  auto stats = SweepInPlace(&db);
  ASSERT_TRUE(stats.ok());
  fstore->WaitForMaintenance();
  // After the sweep, every remaining delta record still resolves.
  fstore->ForEachId([&](const Hash256& id, size_t) {
    Hash256 base;
    if (fstore->GetDeltaBase(id, &base)) {
      EXPECT_TRUE(fstore->Contains(base)) << "stranded delta chain";
    }
  });
  EXPECT_TRUE(db.Verify(*db.Head("keep")).ok());
  auto table = db.GetTable("keep");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table->NumRows(), 400u);
  std::filesystem::remove_all(dir);
}

TEST(GcTest, SweepInPlaceReclaimMatchesDiskOnEncodedStore) {
  // The accounting acceptance check: on a compressed + delta store, disk
  // after an in-place sweep + full compaction must approach the store's own
  // live_physical_bytes figure — the two books have to agree.
  const std::string dir = ::testing::TempDir() + "/fb_gc_encoded_reclaim";
  std::filesystem::remove_all(dir);
  FileChunkStore::Options fopts;
  fopts.segment_bytes = 8192;
  fopts.compression = FileChunkStore::Compression::kLz;
  fopts.delta_chain_depth = 3;
  fopts.maintenance_threads = 2;
  auto fstore_or = FileChunkStore::Open(dir, fopts);
  ASSERT_TRUE(fstore_or.ok());
  std::shared_ptr<FileChunkStore> fstore(std::move(*fstore_or));
  ForkBase db(fstore);

  CsvGenOptions opts;
  opts.num_rows = 300;
  ASSERT_TRUE(db.PutTableFromCsv("keep", GenerateCsv(opts)).ok());
  opts.seed = 7;
  opts.num_rows = 2000;
  ASSERT_TRUE(db.PutTableFromCsv("bulk", GenerateCsv(opts)).ok());
  ASSERT_TRUE(db.DeleteBranch("bulk", "master").ok());
  const uint64_t before = fstore->space_used();

  auto stats = SweepInPlace(&db);
  ASSERT_TRUE(stats.ok());
  ASSERT_GT(stats->swept_chunks, 0u);
  fstore->CompactBelow(1.0);
  fstore->WaitForMaintenance();

  const uint64_t after = fstore->space_used();
  EXPECT_LT(after, before);
  const auto ms = fstore->maintenance_stats();
  EXPECT_LE(ms.live_physical_bytes, ms.live_logical_bytes);
  // Segment files = live physical payloads + per-record headers + the
  // not-yet-compacted slack of a few open/active segments.
  EXPECT_LE(after, ms.live_physical_bytes + stats->live_chunks * 64 +
                       4 * fopts.segment_bytes)
      << "disk must track the store's own physical accounting";
  EXPECT_TRUE(db.Verify(*db.Head("keep")).ok());
  std::filesystem::remove_all(dir);
}

TEST(GcTest, SweepInPlaceRequiresErasableStore) {
  // A store without Erase support must be told to use copy collection.
  class AppendOnlyStore : public ChunkStore {
   public:
    StatusOr<Chunk> Get(const Hash256& id) const override {
      return base_.Get(id);
    }
    bool Contains(const Hash256& id) const override {
      return base_.Contains(id);
    }
    ChunkStoreStats stats() const override { return base_.stats(); }
    void ForEach(const std::function<void(const Hash256&, const Chunk&)>& fn)
        const override {
      base_.ForEach(fn);
    }

   protected:
    Status PutImpl(const Chunk& chunk) override { return base_.Put(chunk); }

   private:
    MemChunkStore base_;
  };
  ForkBase db(std::make_shared<AppendOnlyStore>());
  ASSERT_TRUE(db.PutMap("k", {{"a", "1"}}).ok());
  auto stats = SweepInPlace(&db);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnimplemented);
}

TEST(GcTest, SweepSparesChunksRePutByRacingCommits) {
  // A writer thread keeps committing — including content identical to the
  // garbage being swept (dedup re-puts) — while sweeps run. Whatever the
  // interleaving, published heads must stay fully readable.
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store, ForkBase::Options{.group_commit = true});
  ASSERT_TRUE(db.PutMap("dead", {{"shared", "payload"}, {"k", "v"}}).ok());
  ASSERT_TRUE(db.DeleteBranch("dead", "master").ok());
  CsvGenOptions opts;
  opts.num_rows = 300;
  ASSERT_TRUE(db.PutTableFromCsv("keep", GenerateCsv(opts)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> commits{0};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      // Same bytes as the swept-away "dead" map: a dedup re-put racing the
      // erase loop — exactly what the put pin exists for.
      EXPECT_TRUE(
          db.PutMap("reborn", {{"shared", "payload"}, {"k", "v"}}).ok());
      EXPECT_TRUE(db.PutMap("churn", {{"i", std::to_string(i++)}}).ok());
      commits.fetch_add(1);
    }
  });
  for (int round = 0; round < 5; ++round) {
    // Make sure each sweep actually overlaps fresh commits: wait for the
    // writer to land something since the previous round.
    const int seen = commits.load();
    while (commits.load() <= seen) std::this_thread::yield();
    auto stats = SweepInPlace(&db);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
  stop.store(true);
  writer.join();
  EXPECT_GE(commits.load(), 5);

  for (const auto& key : {"keep", "reborn", "churn"}) {
    auto head = db.Head(key);
    ASSERT_TRUE(head.ok()) << key;
    EXPECT_TRUE(db.Verify(*head).ok())
        << key << ": a racing commit lost chunks to the sweep";
  }
  auto reborn = db.GetMap("reborn");
  ASSERT_TRUE(reborn.ok());
  EXPECT_EQ(**reborn->Get("shared"), "payload");
}

TEST(GcTest, ResurrectionGuardRefusesPartiallySweptHistory) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  auto v1 = db.PutMap("k", {{"a", "1"}, {"b", "2"}});
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(db.DeleteBranch("k", "master").ok());

  // While a sweep is active, re-pointing a branch at intact pre-existing
  // history is validated and allowed...
  {
    ForkBase::SweepScope scope(&db);
    ASSERT_TRUE(db.BranchFromVersion("k", "rescued", *v1).ok());
  }
  ASSERT_TRUE(db.DeleteBranch("k", "rescued").ok());

  // ...but once part of the closure is gone (as after an erase batch), the
  // publish must be refused instead of creating a dangling head.
  auto map = db.GetVersion(*v1);
  ASSERT_TRUE(map.ok());
  const std::vector<Hash256> victim{map->root()};
  ASSERT_TRUE(store->Erase(victim).ok());
  {
    ForkBase::SweepScope scope(&db);
    Status resurrect = db.BranchFromVersion("k", "dangling", *v1);
    EXPECT_EQ(resurrect.code(), StatusCode::kNotFound)
        << "publishing a head with missing chunks must be refused";
  }
  EXPECT_FALSE(db.Head("k", "dangling").ok());
}

}  // namespace
}  // namespace forkbase

// Tests for the garbage collector: mark reachability, copy collection,
// garbage identification after branch deletion, history retention.
#include <gtest/gtest.h>

#include "chunk/mem_chunk_store.h"
#include "store/gc.h"
#include "util/datagen.h"

namespace forkbase {
namespace {

TEST(GcTest, MarkLiveCoversValueTreeAndHistory) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  auto v1 = db.PutMap("k", {{"a", "1"}, {"b", "2"}});
  auto v2 = db.PutMap("k", {{"a", "1"}, {"b", "3"}});
  ASSERT_TRUE(v1.ok() && v2.ok());
  auto live = MarkLive(*store, {*v2});
  ASSERT_TRUE(live.ok());
  // Both FNodes (history!) plus both map roots must be live.
  EXPECT_TRUE(live->count(*v1));
  EXPECT_TRUE(live->count(*v2));
  auto map1 = db.GetVersion(*v1);
  auto map2 = db.GetVersion(*v2);
  ASSERT_TRUE(map1.ok() && map2.ok());
  EXPECT_TRUE(live->count(map1->root()));
  EXPECT_TRUE(live->count(map2->root()));
}

TEST(GcTest, MarkLiveFailsOnMissingRoot) {
  MemChunkStore store;
  EXPECT_FALSE(MarkLive(store, {Sha256(Slice("ghost"))}).ok());
}

TEST(GcTest, NoGarbageWhileEverythingReferenced) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 500;
  ASSERT_TRUE(db.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  ASSERT_TRUE(db.Branch("ds", "dev").ok());
  auto garbage = FindGarbage(db);
  ASSERT_TRUE(garbage.ok());
  EXPECT_TRUE(garbage->empty());
}

TEST(GcTest, DeletedBranchCreatesGarbage) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 1000;
  ASSERT_TRUE(db.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  ASSERT_TRUE(db.Branch("ds", "scratch").ok());
  // Large divergent edit on the scratch branch.
  auto table = db.GetTable("ds", "scratch");
  ASSERT_TRUE(table.ok());
  FTable current = *table;
  for (int i = 0; i < 200; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "r%08d", i);
    auto next = current.UpdateCell(key, 2, "scratch-" + std::to_string(i));
    ASSERT_TRUE(next.ok());
    current = *next;
  }
  ASSERT_TRUE(
      db.Put("ds", Value::OfTable(current.id()), "scratch").ok());

  auto garbage_before = FindGarbage(db);
  ASSERT_TRUE(garbage_before.ok());
  // Intermediate FTable states of the loop are unreferenced already.
  ASSERT_TRUE(db.DeleteBranch("ds", "scratch").ok());
  auto garbage_after = FindGarbage(db);
  ASSERT_TRUE(garbage_after.ok());
  EXPECT_GT(garbage_after->size(), garbage_before->size())
      << "dropping the branch must strand its divergent chunks";
}

TEST(GcTest, CopyLivePreservesAllHeadsAndHistory) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 800;
  ASSERT_TRUE(db.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  ASSERT_TRUE(db.Branch("ds", "dev").ok());
  auto t = db.GetTable("ds", "dev");
  ASSERT_TRUE(t.ok());
  auto edited = t->UpdateCell("r00000400", 1, "dev-edit");
  ASSERT_TRUE(edited.ok());
  ASSERT_TRUE(db.Put("ds", Value::OfTable(edited->id()), "dev").ok());
  // Strand some chunks.
  ASSERT_TRUE(db.PutMap("temp", {{"x", "y"}}).ok());
  ASSERT_TRUE(db.DeleteBranch("temp", "master").ok());

  auto dst = std::make_shared<MemChunkStore>();
  auto stats = CopyLive(db, dst.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->garbage_chunks(), 0u);
  EXPECT_LT(stats->live_chunks, stats->total_chunks);

  // Rebuild a ForkBase over the compacted store: all heads verify.
  ForkBase compacted(dst);
  compacted.branches().SetHead("ds", "master", *db.Head("ds", "master"));
  compacted.branches().SetHead("ds", "dev", *db.Head("ds", "dev"));
  EXPECT_TRUE(compacted.Verify(*compacted.Head("ds", "master")).ok());
  EXPECT_TRUE(compacted.Verify(*compacted.Head("ds", "dev")).ok());
  auto dev_table = compacted.GetTable("ds", "dev");
  ASSERT_TRUE(dev_table.ok());
  EXPECT_EQ(**dev_table->GetCell("r00000400", 1), "dev-edit");
}

TEST(GcTest, CopyLiveIsIdempotent) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  ASSERT_TRUE(db.PutMap("k", {{"a", "1"}}).ok());
  auto dst = std::make_shared<MemChunkStore>();
  auto s1 = CopyLive(db, dst.get());
  ASSERT_TRUE(s1.ok());
  uint64_t chunks_after_first = dst->stats().chunk_count;
  auto s2 = CopyLive(db, dst.get());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(dst->stats().chunk_count, chunks_after_first);
}

TEST(GcTest, SharedChunksSurviveWhenOneReferenceDies) {
  // Two keys share content; deleting one key must not orphan the shared
  // chunks of the other.
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 600;
  CsvDocument doc = GenerateCsv(opts);
  ASSERT_TRUE(db.PutTableFromCsv("a", doc).ok());
  ASSERT_TRUE(db.PutTableFromCsv("b", doc).ok());  // shares all data chunks
  ASSERT_TRUE(db.DeleteBranch("a", "master").ok());

  auto dst = std::make_shared<MemChunkStore>();
  auto stats = CopyLive(db, dst.get());
  ASSERT_TRUE(stats.ok());
  ForkBase survivor(dst);
  survivor.branches().SetHead("b", "master", *db.Head("b", "master"));
  EXPECT_TRUE(survivor.Verify(*survivor.Head("b")).ok());
  auto table = survivor.GetTable("b");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table->NumRows(), 600u);
}

}  // namespace
}  // namespace forkbase

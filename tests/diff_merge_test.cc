// Tests for hash-pruned Diff (Fig. 5 semantics) and three-way merge
// (Fig. 3 semantics) at the POS-Tree level.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chunk/mem_chunk_store.h"
#include "postree/diff.h"
#include "postree/merge.h"
#include "util/random.h"

namespace forkbase {
namespace {

std::vector<std::pair<std::string, std::string>> MakeKvs(size_t n,
                                                         uint64_t seed) {
  Rng rng(seed);
  std::map<std::string, std::string> sorted;
  while (sorted.size() < n) {
    sorted["key" + rng.NextString(12)] = rng.NextString(24);
  }
  return {sorted.begin(), sorted.end()};
}

PosTree BuildMap(MemChunkStore* store,
                 const std::vector<std::pair<std::string, std::string>>& kvs) {
  auto info = PosTree::BuildKeyed(store, ChunkType::kMapLeaf, kvs);
  EXPECT_TRUE(info.ok());
  return PosTree(store, ChunkType::kMapLeaf, info->root);
}

// ------------------------------------------------------------- DiffKeyed --

TEST(DiffKeyedTest, IdenticalTreesDiffEmpty) {
  MemChunkStore store;
  auto kvs = MakeKvs(1000, 1);
  PosTree a = BuildMap(&store, kvs);
  PosTree b = BuildMap(&store, kvs);
  DiffMetrics metrics;
  auto deltas = DiffKeyed(a, b, &metrics);
  ASSERT_TRUE(deltas.ok());
  EXPECT_TRUE(deltas->empty());
  EXPECT_EQ(metrics.nodes_loaded, 0u) << "equal roots must prune instantly";
}

TEST(DiffKeyedTest, FindsSingleModification) {
  MemChunkStore store;
  auto kvs = MakeKvs(5000, 2);
  PosTree a = BuildMap(&store, kvs);
  auto edited = a.ApplyKeyedOps({{kvs[2500].first, std::string("changed")}});
  ASSERT_TRUE(edited.ok());
  PosTree b(&store, ChunkType::kMapLeaf, edited->root);

  auto deltas = DiffKeyed(a, b);
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), 1u);
  EXPECT_EQ((*deltas)[0].key, kvs[2500].first);
  EXPECT_TRUE((*deltas)[0].modified());
  EXPECT_EQ(*(*deltas)[0].left, kvs[2500].second);
  EXPECT_EQ(*(*deltas)[0].right, "changed");
}

TEST(DiffKeyedTest, FindsAddsAndRemoves) {
  MemChunkStore store;
  auto kvs = MakeKvs(2000, 3);
  PosTree a = BuildMap(&store, kvs);
  auto edited = a.ApplyKeyedOps({{std::string("zzznew"), std::string("v")},
                                 {kvs[10].first, std::nullopt}});
  ASSERT_TRUE(edited.ok());
  PosTree b(&store, ChunkType::kMapLeaf, edited->root);
  auto deltas = DiffKeyed(a, b);
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), 2u);
  // Sorted by key: the removed kvs[10] key starts with "key", before "zzz".
  EXPECT_TRUE((*deltas)[0].removed());
  EXPECT_EQ((*deltas)[0].key, kvs[10].first);
  EXPECT_TRUE((*deltas)[1].added());
  EXPECT_EQ((*deltas)[1].key, "zzznew");
}

class DiffAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DiffAgreementTest, PrunedDiffEqualsElementwiseDiff) {
  const size_t edits = GetParam();
  MemChunkStore store;
  auto kvs = MakeKvs(8000, 40 + edits);
  PosTree a = BuildMap(&store, kvs);

  Rng rng(50 + edits);
  std::vector<KeyedOp> ops;
  for (size_t i = 0; i < edits; ++i) {
    switch (rng.Uniform(3)) {
      case 0:  // modify
        ops.push_back(KeyedOp{kvs[rng.Uniform(kvs.size())].first,
                              rng.NextString(10)});
        break;
      case 1:  // insert
        ops.push_back(KeyedOp{"new" + rng.NextString(10), rng.NextString(10)});
        break;
      default:  // delete
        ops.push_back(KeyedOp{kvs[rng.Uniform(kvs.size())].first,
                              std::nullopt});
    }
  }
  auto edited = a.ApplyKeyedOps(ops);
  ASSERT_TRUE(edited.ok());
  PosTree b(&store, ChunkType::kMapLeaf, edited->root);

  DiffMetrics pruned_metrics;
  auto pruned = DiffKeyed(a, b, &pruned_metrics);
  auto element = DiffKeyedElementwise(a, b);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(element.ok());
  ASSERT_EQ(pruned->size(), element->size());
  for (size_t i = 0; i < pruned->size(); ++i) {
    EXPECT_EQ((*pruned)[i].key, (*element)[i].key);
    EXPECT_EQ((*pruned)[i].left, (*element)[i].left);
    EXPECT_EQ((*pruned)[i].right, (*element)[i].right);
  }
}

INSTANTIATE_TEST_SUITE_P(EditCounts, DiffAgreementTest,
                         ::testing::Values(1, 4, 16, 64, 256));

TEST(DiffKeyedTest, PruningBoundsWork) {
  // O(D log N): a single edit in a large tree must load far fewer nodes
  // than the tree holds.
  MemChunkStore store;
  auto kvs = MakeKvs(50000, 4);
  PosTree a = BuildMap(&store, kvs);
  auto edited = a.ApplyKeyedOps({{kvs[25000].first, std::string("x")}});
  ASSERT_TRUE(edited.ok());
  PosTree b(&store, ChunkType::kMapLeaf, edited->root);

  auto shape = a.Shape();
  ASSERT_TRUE(shape.ok());
  DiffMetrics metrics;
  auto deltas = DiffKeyed(a, b, &metrics);
  ASSERT_TRUE(deltas.ok());
  EXPECT_EQ(deltas->size(), 1u);
  EXPECT_LT(metrics.nodes_loaded, shape->total_nodes / 4)
      << "diff touched " << metrics.nodes_loaded << " of "
      << shape->total_nodes << " nodes";
}

TEST(DiffKeyedTest, DisjointTreesDiffFully) {
  MemChunkStore store;
  auto kvs_a = MakeKvs(500, 5);
  std::vector<std::pair<std::string, std::string>> kvs_b;
  for (auto [k, v] : MakeKvs(500, 6)) kvs_b.emplace_back("other" + k, v);
  PosTree a = BuildMap(&store, kvs_a);
  PosTree b = BuildMap(&store, kvs_b);
  auto deltas = DiffKeyed(a, b);
  ASSERT_TRUE(deltas.ok());
  EXPECT_EQ(deltas->size(), kvs_a.size() + kvs_b.size());
}

TEST(DiffKeyedTest, EmptyVsNonEmpty) {
  MemChunkStore store;
  PosTree empty = BuildMap(&store, {});
  auto kvs = MakeKvs(100, 7);
  PosTree full = BuildMap(&store, kvs);
  auto deltas = DiffKeyed(empty, full);
  ASSERT_TRUE(deltas.ok());
  EXPECT_EQ(deltas->size(), kvs.size());
  for (const auto& d : *deltas) EXPECT_TRUE(d.added());
}

// ---------------------------------------------------------- DiffSequence --

TEST(DiffSequenceTest, IdenticalBlobsAreNullopt) {
  MemChunkStore store;
  std::string data = Rng(8).NextBytes(50000);
  auto a = PosTree::BuildBlob(&store, data);
  auto b = PosTree::BuildBlob(&store, data);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto delta = DiffSequence(
      PosTree(&store, ChunkType::kBlobLeaf, a->root, TreeConfig::ForBlob()),
      PosTree(&store, ChunkType::kBlobLeaf, b->root, TreeConfig::ForBlob()));
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(delta->has_value());
}

TEST(DiffSequenceTest, LocalEditYieldsLocalRegion) {
  MemChunkStore store;
  std::string data = Rng(9).NextBytes(200000);
  std::string edited = data;
  edited[100000] = static_cast<char>(edited[100000] ^ 0x7f);

  auto a = PosTree::BuildBlob(&store, data);
  auto b = PosTree::BuildBlob(&store, edited);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  DiffMetrics metrics;
  auto delta = DiffSequence(
      PosTree(&store, ChunkType::kBlobLeaf, a->root, TreeConfig::ForBlob()),
      PosTree(&store, ChunkType::kBlobLeaf, b->root, TreeConfig::ForBlob()),
      &metrics);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(delta->has_value());
  // The differing region covers the edit and is a tiny fraction of the blob.
  EXPECT_LE((*delta)->left_start, 100000u);
  EXPECT_GE((*delta)->left_start + (*delta)->left_count, 100001u);
  EXPECT_LT((*delta)->left_count, 64 * 1024u);
  EXPECT_EQ((*delta)->left_count, (*delta)->right_count);
}

TEST(DiffSequenceTest, InsertionShiftsTrackedByCounts) {
  MemChunkStore store;
  Rng rng(10);
  std::vector<std::string> elems;
  for (int i = 0; i < 2000; ++i) elems.push_back(rng.NextString(12));
  auto a = PosTree::BuildList(&store, elems);
  std::vector<std::string> inserted = elems;
  inserted.insert(inserted.begin() + 1000, "NEW-ELEMENT");
  auto b = PosTree::BuildList(&store, inserted);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto delta = DiffSequence(PosTree(&store, ChunkType::kListLeaf, a->root),
                            PosTree(&store, ChunkType::kListLeaf, b->root));
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(delta->has_value());
  EXPECT_EQ((*delta)->right_count, (*delta)->left_count + 1);
  // The inserted element is inside the right region.
  bool found = false;
  for (const auto& e : (*delta)->right_elems) {
    if (e == "NEW-ELEMENT") found = true;
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------ MergeKeyed --

TEST(MergeKeyedTest, DisjointEditsMergeCleanly) {
  MemChunkStore store;
  auto kvs = MakeKvs(4000, 11);
  PosTree base = BuildMap(&store, kvs);
  auto left_info = base.ApplyKeyedOps({{kvs[100].first, std::string("L")}});
  auto right_info = base.ApplyKeyedOps({{kvs[3000].first, std::string("R")}});
  ASSERT_TRUE(left_info.ok());
  ASSERT_TRUE(right_info.ok());
  PosTree left(&store, ChunkType::kMapLeaf, left_info->root);
  PosTree right(&store, ChunkType::kMapLeaf, right_info->root);

  auto result = MergeKeyed(base, left, right);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->conflict_keys.empty());
  PosTree merged(&store, ChunkType::kMapLeaf, result->merged.root);
  auto l = merged.Lookup(kvs[100].first);
  auto r = merged.Lookup(kvs[3000].first);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**l, "L");
  EXPECT_EQ(**r, "R");

  // The merged tree equals the from-scratch build of the merged record set.
  std::map<std::string, std::string> reference(kvs.begin(), kvs.end());
  reference[kvs[100].first] = "L";
  reference[kvs[3000].first] = "R";
  MemChunkStore fresh;
  auto scratch = PosTree::BuildKeyed(
      &fresh, ChunkType::kMapLeaf,
      std::vector<std::pair<std::string, std::string>>(reference.begin(),
                                                       reference.end()));
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(result->merged.root, scratch->root);
}

TEST(MergeKeyedTest, SameEditOnBothSidesIsNotAConflict) {
  MemChunkStore store;
  auto kvs = MakeKvs(100, 12);
  PosTree base = BuildMap(&store, kvs);
  auto li = base.ApplyKeyedOps({{kvs[5].first, std::string("same")}});
  auto ri = base.ApplyKeyedOps({{kvs[5].first, std::string("same")}});
  ASSERT_TRUE(li.ok());
  ASSERT_TRUE(ri.ok());
  auto result = MergeKeyed(base, PosTree(&store, ChunkType::kMapLeaf, li->root),
                           PosTree(&store, ChunkType::kMapLeaf, ri->root));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->conflict_keys.empty());
}

TEST(MergeKeyedTest, ConflictingEditsFailStrict) {
  MemChunkStore store;
  auto kvs = MakeKvs(100, 13);
  PosTree base = BuildMap(&store, kvs);
  auto li = base.ApplyKeyedOps({{kvs[5].first, std::string("left")}});
  auto ri = base.ApplyKeyedOps({{kvs[5].first, std::string("right")}});
  ASSERT_TRUE(li.ok());
  ASSERT_TRUE(ri.ok());
  PosTree left(&store, ChunkType::kMapLeaf, li->root);
  PosTree right(&store, ChunkType::kMapLeaf, ri->root);
  auto strict = MergeKeyed(base, left, right, MergePolicy::kStrict);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsMergeConflict());

  auto prefer_left = MergeKeyed(base, left, right, MergePolicy::kPreferLeft);
  ASSERT_TRUE(prefer_left.ok());
  PosTree ml(&store, ChunkType::kMapLeaf, prefer_left->merged.root);
  EXPECT_EQ(**ml.Lookup(kvs[5].first), "left");

  auto prefer_right = MergeKeyed(base, left, right, MergePolicy::kPreferRight);
  ASSERT_TRUE(prefer_right.ok());
  PosTree mr(&store, ChunkType::kMapLeaf, prefer_right->merged.root);
  EXPECT_EQ(**mr.Lookup(kvs[5].first), "right");
}

TEST(MergeKeyedTest, DeleteVsModifyConflicts) {
  MemChunkStore store;
  auto kvs = MakeKvs(100, 14);
  PosTree base = BuildMap(&store, kvs);
  auto li = base.ApplyKeyedOps({{kvs[7].first, std::nullopt}});
  auto ri = base.ApplyKeyedOps({{kvs[7].first, std::string("kept")}});
  ASSERT_TRUE(li.ok());
  ASSERT_TRUE(ri.ok());
  auto result =
      MergeKeyed(base, PosTree(&store, ChunkType::kMapLeaf, li->root),
                 PosTree(&store, ChunkType::kMapLeaf, ri->root));
  EXPECT_TRUE(result.status().IsMergeConflict());
}

TEST(MergeKeyedTest, MergeReusesChunksPhysically) {
  // Fig. 3: the merged tree shares disjointly-modified subtrees. Count how
  // many brand-new chunks the merge writes — must be a small fraction.
  MemChunkStore store;
  auto kvs = MakeKvs(20000, 15);
  PosTree base = BuildMap(&store, kvs);
  auto li = base.ApplyKeyedOps({{kvs[10].first, std::string("L")}});
  auto ri = base.ApplyKeyedOps({{kvs[19000].first, std::string("R")}});
  ASSERT_TRUE(li.ok());
  ASSERT_TRUE(ri.ok());

  uint64_t chunks_before = store.stats().chunk_count;
  auto result = MergeKeyed(base, PosTree(&store, ChunkType::kMapLeaf, li->root),
                           PosTree(&store, ChunkType::kMapLeaf, ri->root));
  ASSERT_TRUE(result.ok());
  uint64_t new_chunks = store.stats().chunk_count - chunks_before;

  PosTree merged(&store, ChunkType::kMapLeaf, result->merged.root);
  auto shape = merged.Shape();
  ASSERT_TRUE(shape.ok());
  EXPECT_LT(new_chunks, shape->total_nodes / 4)
      << "merge wrote " << new_chunks << " new chunks out of "
      << shape->total_nodes << " in the merged tree";
}

// --------------------------------------------------------- MergeSequence --

TEST(MergeSequenceTest, DisjointSplicesBothApplied) {
  MemChunkStore store;
  std::string data = Rng(16).NextBytes(150000);
  auto base_info = PosTree::BuildBlob(&store, data);
  ASSERT_TRUE(base_info.ok());
  PosTree base(&store, ChunkType::kBlobLeaf, base_info->root,
               TreeConfig::ForBlob());

  auto left_info = base.SpliceBytes(10000, 4, "LEFT");
  auto right_info = base.SpliceBytes(140000, 5, "RIGHT");
  ASSERT_TRUE(left_info.ok());
  ASSERT_TRUE(right_info.ok());
  PosTree left(&store, ChunkType::kBlobLeaf, left_info->root,
               TreeConfig::ForBlob());
  PosTree right(&store, ChunkType::kBlobLeaf, right_info->root,
                TreeConfig::ForBlob());

  auto result = MergeSequence(base, left, right);
  ASSERT_TRUE(result.ok());
  std::string expected = data;
  expected.replace(140000, 5, "RIGHT");
  expected.replace(10000, 4, "LEFT");
  PosTree merged(&store, ChunkType::kBlobLeaf, result->merged.root,
                 TreeConfig::ForBlob());
  std::string out;
  ASSERT_TRUE(merged.ReadBytes(0, expected.size(), &out).ok());
  EXPECT_EQ(out, expected);
}

TEST(MergeSequenceTest, OneSideUnchangedFastForwards) {
  MemChunkStore store;
  std::string data = Rng(17).NextBytes(50000);
  auto base_info = PosTree::BuildBlob(&store, data);
  ASSERT_TRUE(base_info.ok());
  PosTree base(&store, ChunkType::kBlobLeaf, base_info->root,
               TreeConfig::ForBlob());
  auto left_info = base.SpliceBytes(100, 1, "Z");
  ASSERT_TRUE(left_info.ok());
  PosTree left(&store, ChunkType::kBlobLeaf, left_info->root,
               TreeConfig::ForBlob());
  auto result = MergeSequence(base, left, base);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->merged.root, left.root());
}

TEST(MergeSequenceTest, OverlappingEditsConflictStrict) {
  MemChunkStore store;
  std::string data = Rng(18).NextBytes(100000);
  auto base_info = PosTree::BuildBlob(&store, data);
  ASSERT_TRUE(base_info.ok());
  PosTree base(&store, ChunkType::kBlobLeaf, base_info->root,
               TreeConfig::ForBlob());
  auto li = base.SpliceBytes(50000, 10, "AAAA");
  auto ri = base.SpliceBytes(50004, 10, "BBBB");
  ASSERT_TRUE(li.ok());
  ASSERT_TRUE(ri.ok());
  PosTree left(&store, ChunkType::kBlobLeaf, li->root, TreeConfig::ForBlob());
  PosTree right(&store, ChunkType::kBlobLeaf, ri->root, TreeConfig::ForBlob());
  auto strict = MergeSequence(base, left, right, MergePolicy::kStrict);
  EXPECT_TRUE(strict.status().IsMergeConflict());

  auto prefer_left = MergeSequence(base, left, right, MergePolicy::kPreferLeft);
  ASSERT_TRUE(prefer_left.ok());
  EXPECT_EQ(prefer_left->merged.root, left.root());
}

}  // namespace
}  // namespace forkbase

// Unit tests for the utility substrate: Status, Slice, codecs, SHA-256,
// Base32, rolling hash, CSV, and the synthetic data generator.
#include <gtest/gtest.h>

#include <map>

#include "util/base32.h"
#include "util/codec.h"
#include "util/compress.h"
#include "util/csv.h"
#include "util/delta_codec.h"
#include "util/datagen.h"
#include "util/random.h"
#include "util/rolling_hash.h"
#include "util/sha256.h"
#include "util/slice.h"
#include "util/status.h"

namespace forkbase {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("chunk xyz");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: chunk xyz");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kMergeConflict),
               "MergeConflict");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kPermissionDenied),
               "PermissionDenied");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(StatusOrTest, ValueAccess) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, ErrorAccess) {
  StatusOr<int> v = Status::IOError("disk");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIOError);
  EXPECT_EQ(v.value_or(7), 7);
}

StatusOr<int> ReturnsDouble(StatusOr<int> in) {
  FB_ASSIGN_OR_RETURN(int x, in);
  return 2 * x;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(*ReturnsDouble(21), 42);
  EXPECT_TRUE(ReturnsDouble(Status::NotFound("x")).status().IsNotFound());
}

// ----------------------------------------------------------------- Slice --

TEST(SliceTest, CompareIsLexicographic) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);   // prefix sorts first
  EXPECT_TRUE(Slice("") < Slice("a"));
}

TEST(SliceTest, SubstrClamps) {
  Slice s("hello");
  EXPECT_EQ(s.substr(1, 3).ToString(), "ell");
  EXPECT_EQ(s.substr(4).ToString(), "o");
  EXPECT_EQ(s.substr(9).ToString(), "");
  EXPECT_EQ(s.substr(2, 100).ToString(), "llo");
}

// ----------------------------------------------------------------- Codec --

TEST(CodecTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefull);
  Decoder dec(buf);
  uint32_t a;
  uint64_t b;
  ASSERT_TRUE(dec.GetFixed32(&a));
  ASSERT_TRUE(dec.GetFixed64(&b));
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x0123456789abcdefull);
  EXPECT_TRUE(dec.AtEnd());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  EXPECT_EQ(buf.size(), VarintLength(GetParam()));
  Decoder dec(buf);
  uint64_t v;
  ASSERT_TRUE(dec.GetVarint64(&v));
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Values, VarintRoundTrip,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull,
                                           16383ull, 16384ull, 1ull << 32,
                                           (1ull << 56) - 1,
                                           UINT64_MAX));

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice(std::string(300, 'x')));
  Decoder dec(buf);
  Slice a, b, c;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a));
  ASSERT_TRUE(dec.GetLengthPrefixed(&b));
  ASSERT_TRUE(dec.GetLengthPrefixed(&c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 300u);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, DecoderRejectsUnderflow) {
  std::string buf;
  PutVarint64(&buf, 1000);  // length prefix promising 1000 bytes
  Decoder dec(buf);
  Slice s;
  EXPECT_FALSE(dec.GetLengthPrefixed(&s));
  uint64_t v;
  Decoder dec2(Slice("\xff\xff", 2));  // truncated varint
  EXPECT_FALSE(dec2.GetVarint64(&v));
}

// Regression: GetVarint64 once accepted overlong encodings — "\x80\x00"
// decoded to the same 0 as "\x00". Two byte strings decoding to one value
// desyncs every VarintLength-based offset computation (the network framer's
// malformed-varint heuristic, the bundle importer's record scan), so the
// decoder must enforce PutVarint64's canonical minimal form.
TEST(CodecTest, DecoderRejectsOverlongVarint) {
  const struct {
    const char* bytes;
    size_t len;
  } overlong[] = {
      {"\x80\x00", 2},                  // 0 padded to two bytes
      {"\xff\x00", 2},                  // 127 padded to two bytes
      {"\x80\x80\x80\x00", 4},          // 0 padded to four
      {"\x81\x80\x80\x80\x80\x80\x80\x80\x80\x00", 10},  // 1 padded to ten
  };
  for (const auto& c : overlong) {
    Decoder dec(Slice(c.bytes, c.len));
    uint64_t v = 0;
    EXPECT_FALSE(dec.GetVarint64(&v)) << "accepted overlong form";
    // A failed decode must not consume bytes: callers retry with more data
    // or bail, and either way the cursor has to still point at the varint.
    EXPECT_EQ(dec.position(), 0u);
  }
}

TEST(CodecTest, DecoderRejectsVarintOverflow) {
  // Ten bytes whose final byte carries more than bit 63: the value would
  // wrap past UINT64_MAX.
  Decoder dec(Slice("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x02", 10));
  uint64_t v = 0;
  EXPECT_FALSE(dec.GetVarint64(&v));
  EXPECT_EQ(dec.position(), 0u);
  // UINT64_MAX itself (final byte 0x01) stays accepted.
  Decoder max_dec(Slice("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01", 10));
  ASSERT_TRUE(max_dec.GetVarint64(&v));
  EXPECT_EQ(v, UINT64_MAX);
}

// ------------------------------------------------------------ LZ blocks --

TEST(CompressTest, RoundTripsCompressibleAndRandomInput) {
  Rng rng(7);
  // Highly repetitive input compresses; the round trip is exact.
  std::string repetitive;
  for (int i = 0; i < 200; ++i) repetitive += "the quick brown fox ";
  std::string packed;
  LzCompressBlock(repetitive, &packed);
  EXPECT_LT(packed.size(), repetitive.size() / 2);
  EXPECT_EQ(LzDecompressedLength(packed), repetitive.size());
  std::string back;
  ASSERT_TRUE(LzDecompressBlock(packed, &back));
  EXPECT_EQ(back, repetitive);

  // Random input degenerates to literals but still round-trips.
  std::string random_bytes;
  for (int i = 0; i < 4096; ++i) {
    random_bytes.push_back(static_cast<char>(rng.Uniform(256)));
  }
  packed.clear();
  LzCompressBlock(random_bytes, &packed);
  back.clear();
  ASSERT_TRUE(LzDecompressBlock(packed, &back));
  EXPECT_EQ(back, random_bytes);

  // Empty input round-trips too.
  packed.clear();
  back.clear();
  LzCompressBlock(Slice(""), &packed);
  ASSERT_TRUE(LzDecompressBlock(packed, &back));
  EXPECT_TRUE(back.empty());
}

TEST(CompressTest, RejectsTruncatedAndTamperedBlocks) {
  std::string input(1000, 'a');
  std::string packed;
  LzCompressBlock(input, &packed);
  std::string out;
  EXPECT_FALSE(LzDecompressBlock(Slice(packed.data(), packed.size() / 2),
                                 &out));
  out.clear();
  EXPECT_FALSE(LzDecompressBlock(Slice(""), &out));
  // A length header promising more than the ops produce is malformed.
  std::string short_block;
  PutVarint64(&short_block, 50);  // promises 50 bytes, delivers none
  out.clear();
  EXPECT_FALSE(LzDecompressBlock(short_block, &out));
}

// ----------------------------------------------------------- delta codec --

TEST(DeltaCodecTest, RoundTripsNearIdenticalInputs) {
  std::string base;
  for (int i = 0; i < 300; ++i) {
    base += "row-" + std::to_string(i) + ":payload;";
  }
  std::string target = base;
  target.replace(100, 7, "EDITED!");
  target.insert(2000, "inserted run");

  std::string delta;
  CreateDelta(base, target, &delta);
  EXPECT_LT(delta.size(), target.size() / 8)
      << "near-identical versions must delta small";
  EXPECT_EQ(DeltaTargetLength(delta), target.size());
  std::string rebuilt;
  ASSERT_TRUE(ApplyDelta(base, delta, &rebuilt));
  EXPECT_EQ(rebuilt, target);
}

TEST(DeltaCodecTest, WrongBaseFailsTheChecksum) {
  std::string base_a(2000, 'a'), base_b(2000, 'b');
  std::string target = base_a + "tail";
  std::string delta;
  CreateDelta(base_a, target, &delta);
  std::string rebuilt;
  ASSERT_TRUE(ApplyDelta(base_a, delta, &rebuilt));
  ASSERT_EQ(rebuilt, target);
  // Same length, different content: COPY offsets stay structurally valid,
  // so only the FNV trailer can catch the mixup — that is its whole job.
  rebuilt.clear();
  EXPECT_FALSE(ApplyDelta(base_b, delta, &rebuilt));
}

TEST(DeltaCodecTest, RejectsTamperedDelta) {
  std::string base(1500, 'x');
  std::string target = base;
  target[700] = 'y';
  std::string delta;
  CreateDelta(base, target, &delta);
  std::string rebuilt;
  // Flip a byte in the middle (ops region) and in the trailer.
  for (size_t flip : {delta.size() / 2, delta.size() - 1}) {
    std::string bad = delta;
    bad[flip] ^= 0x04;
    rebuilt.clear();
    EXPECT_FALSE(ApplyDelta(base, bad, &rebuilt))
        << "tampered delta at byte " << flip << " was accepted";
  }
  rebuilt.clear();
  EXPECT_FALSE(ApplyDelta(base, Slice(delta.data(), delta.size() - 5),
                          &rebuilt))
      << "truncated delta was accepted";
}

// --------------------------------------------------------------- SHA-256 --

// FIPS 180-4 / NIST CAVS vectors.
TEST(Sha256Test, NistVectors) {
  EXPECT_EQ(Sha256(Slice("")).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256(Slice("abc")).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Sha256(Slice("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  EXPECT_EQ(Sha256(Slice(std::string(1000000, 'a'))).ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(3);
  std::string data = rng.NextBytes(100000);
  for (size_t step : {1u, 7u, 63u, 64u, 65u, 4096u}) {
    Sha256Hasher h;
    for (size_t i = 0; i < data.size(); i += step) {
      h.Update(Slice(data.data() + i, std::min(step, data.size() - i)));
    }
    EXPECT_EQ(h.Finish(), Sha256(data)) << "step " << step;
  }
}

TEST(Sha256Test, Hash256Helpers) {
  Hash256 null = Hash256::Null();
  EXPECT_TRUE(null.IsNull());
  Hash256 h = Sha256(Slice("x"));
  EXPECT_FALSE(h.IsNull());
  EXPECT_NE(h, null);
  EXPECT_EQ(h, Sha256(Slice("x")));
}

// ---------------------------------------------------------------- Base32 --

TEST(Base32Test, Rfc4648Vectors) {
  // RFC 4648 §10 (padding stripped — our encoder omits it).
  EXPECT_EQ(Base32Encode(Slice("")), "");
  EXPECT_EQ(Base32Encode(Slice("f")), "MY");
  EXPECT_EQ(Base32Encode(Slice("fo")), "MZXQ");
  EXPECT_EQ(Base32Encode(Slice("foo")), "MZXW6");
  EXPECT_EQ(Base32Encode(Slice("foob")), "MZXW6YQ");
  EXPECT_EQ(Base32Encode(Slice("fooba")), "MZXW6YTB");
  EXPECT_EQ(Base32Encode(Slice("foobar")), "MZXW6YTBOI");
}

TEST(Base32Test, DecodeInversesEncode) {
  Rng rng(17);
  for (size_t len = 0; len <= 64; ++len) {
    std::string data = rng.NextBytes(len);
    std::string decoded;
    ASSERT_TRUE(Base32Decode(Base32Encode(data), &decoded)) << len;
    EXPECT_EQ(decoded, data);
  }
}

TEST(Base32Test, DecodeToleratesPaddingAndCase) {
  std::string decoded;
  ASSERT_TRUE(Base32Decode(Slice("MZXW6YQ="), &decoded));
  EXPECT_EQ(decoded, "foob");
  ASSERT_TRUE(Base32Decode(Slice("mzxw6ytboi"), &decoded));
  EXPECT_EQ(decoded, "foobar");
}

TEST(Base32Test, DecodeRejectsBadAlphabet) {
  std::string decoded;
  EXPECT_FALSE(Base32Decode(Slice("M1XW6"), &decoded));  // '1' invalid
  EXPECT_FALSE(Base32Decode(Slice("M!"), &decoded));
}

TEST(Base32Test, UidRoundTrip) {
  Hash256 h = Sha256(Slice("forkbase"));
  std::string uid = h.ToBase32();
  EXPECT_EQ(uid.size(), 52u);  // ceil(256/5)
  Hash256 parsed;
  ASSERT_TRUE(Hash256::FromBase32(uid, &parsed));
  EXPECT_EQ(parsed, h);
}

// ---------------------------------------------------------- Rolling hash --

TEST(RollingHashTest, DeterministicAcrossInstances) {
  Rng rng(5);
  std::string data = rng.NextBytes(4096);
  RollingHash a(48, 12), b(48, 12);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(a.Roll(static_cast<uint8_t>(data[i])),
              b.Roll(static_cast<uint8_t>(data[i])));
  }
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(RollingHashTest, WindowMustFillBeforePatterns) {
  RollingHash h(32, 1);  // q=1: patterns every other byte on average
  int fired = 0;
  for (int i = 0; i < 31; ++i) fired += h.Roll(static_cast<uint8_t>(i));
  EXPECT_EQ(fired, 0) << "patterns before the window is full";
}

TEST(RollingHashTest, HashDependsOnlyOnWindow) {
  // After k bytes, the hash must not depend on bytes older than the window.
  const size_t k = 16;
  std::string tail = Rng(7).NextBytes(k);
  RollingHash h1(k, 10), h2(k, 10);
  std::string prefix1 = Rng(8).NextBytes(100);
  std::string prefix2 = Rng(9).NextBytes(250);
  for (char c : prefix1) h1.Roll(static_cast<uint8_t>(c));
  for (char c : prefix2) h2.Roll(static_cast<uint8_t>(c));
  for (char c : tail) {
    h1.Roll(static_cast<uint8_t>(c));
    h2.Roll(static_cast<uint8_t>(c));
  }
  EXPECT_EQ(h1.hash(), h2.hash());
}

TEST(RollingHashTest, PatternRateApproximates2PowQ) {
  // With q bits, the pattern should fire with probability ~2^-q per byte.
  const uint32_t q = 8;
  RollingHash h(32, q);
  Rng rng(11);
  std::string data = rng.NextBytes(1 << 20);
  uint64_t fired = 0;
  for (char c : data) fired += h.Roll(static_cast<uint8_t>(c));
  const double expected = static_cast<double>(data.size()) / (1 << q);
  EXPECT_GT(fired, expected * 0.8);
  EXPECT_LT(fired, expected * 1.2);
}

TEST(RollingHashTest, ResetClearsState) {
  RollingHash h(16, 10);
  std::string data = Rng(13).NextBytes(64);
  std::vector<bool> first;
  for (char c : data) first.push_back(h.Roll(static_cast<uint8_t>(c)));
  h.Reset();
  std::vector<bool> second;
  for (char c : data) second.push_back(h.Roll(static_cast<uint8_t>(c)));
  EXPECT_EQ(first, second);
}

// ------------------------------------------------------------------- CSV --

TEST(CsvTest, ParsesSimpleDocument) {
  auto doc = ParseCsv(Slice("a,b,c\n1,2,3\n4,5,6\n"));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, HandlesQuotedCells) {
  auto doc = ParseCsv(Slice("k,v\n\"a,b\",\"line1\nline2\"\n\"he said "
                            "\"\"hi\"\"\",plain\n"));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "a,b");
  EXPECT_EQ(doc->rows[0][1], "line1\nline2");
  EXPECT_EQ(doc->rows[1][0], "he said \"hi\"");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv(Slice("a,b\n1,2,3\n")).ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv(Slice("a\n\"oops\n")).ok());
}

TEST(CsvTest, WriteThenParseRoundTrips) {
  CsvDocument doc;
  doc.header = {"id", "text"};
  doc.rows = {{"r1", "plain"},
              {"r2", "with,comma"},
              {"r3", "with \"quote\""},
              {"r4", "multi\nline"}};
  auto reparsed = ParseCsv(WriteCsv(doc));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->header, doc.header);
  EXPECT_EQ(reparsed->rows, doc.rows);
}

TEST(CsvTest, CrlfTolerated) {
  auto doc = ParseCsv(Slice("a,b\r\n1,2\r\n"));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
}

// --------------------------------------------------------------- Datagen --

TEST(DatagenTest, DeterministicForSeed) {
  CsvGenOptions opts;
  opts.num_rows = 50;
  CsvDocument a = GenerateCsv(opts);
  CsvDocument b = GenerateCsv(opts);
  EXPECT_EQ(WriteCsv(a), WriteCsv(b));
  opts.seed = 8;
  EXPECT_NE(WriteCsv(GenerateCsv(opts)), WriteCsv(a));
}

TEST(DatagenTest, TargetBytesApproximatelyHonored) {
  CsvGenOptions opts;
  opts.target_bytes = 338 * 1024;  // the Fig. 4 dataset size
  CsvDocument doc = GenerateCsv(opts);
  size_t bytes = CsvBytes(doc);
  EXPECT_GT(bytes, 330 * 1024u);
  EXPECT_LT(bytes, 350 * 1024u);
}

TEST(DatagenTest, EditOneWordChangesExactlyOneCell) {
  CsvGenOptions opts;
  opts.num_rows = 100;
  CsvDocument base = GenerateCsv(opts);
  CsvDocument edited = EditOneWord(base, 42, 3, "REPLACED");
  int diff_cells = 0;
  for (size_t r = 0; r < base.rows.size(); ++r) {
    for (size_t c = 0; c < base.header.size(); ++c) {
      if (base.rows[r][c] != edited.rows[r][c]) ++diff_cells;
    }
  }
  EXPECT_EQ(diff_cells, 1);
  EXPECT_EQ(edited.rows[42][3].rfind("REPLACED", 0), 0u);
}

TEST(DatagenTest, EditCellsTouchesRequestedCount) {
  CsvGenOptions opts;
  opts.num_rows = 500;
  CsvDocument base = GenerateCsv(opts);
  CsvDocument edited = EditCells(base, 10, 99);
  int diff_cells = 0;
  for (size_t r = 0; r < base.rows.size(); ++r) {
    for (size_t c = 0; c < base.header.size(); ++c) {
      if (base.rows[r][c] != edited.rows[r][c]) ++diff_cells;
    }
  }
  EXPECT_GE(diff_cells, 1);
  EXPECT_LE(diff_cells, 10);  // collisions may reduce the count
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicAndDistributed) {
  Rng a(1), b(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(2);
  std::map<uint64_t, int> buckets;
  for (int i = 0; i < 10000; ++i) ++buckets[c.Uniform(10)];
  for (const auto& [bucket, count] : buckets) {
    EXPECT_GT(count, 800) << bucket;
    EXPECT_LT(count, 1200) << bucket;
  }
}

}  // namespace
}  // namespace forkbase

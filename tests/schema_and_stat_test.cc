// Tests for table schema evolution (AddColumn/DropColumn/RenameColumn) and
// the per-object Stat verb.
#include <gtest/gtest.h>

#include <set>

#include "chunk/mem_chunk_store.h"
#include "store/forkbase.h"
#include "util/datagen.h"

namespace forkbase {
namespace {

StatusOr<FTable> SampleTable(ChunkStore* store) {
  return FTable::Create(store, {"id", "name", "qty"},
                        {{"r1", "widget", "5"},
                         {"r2", "gadget", "7"},
                         {"r3", "doodad", "0"}});
}

// -------------------------------------------------------- schema evolution --

TEST(SchemaEvolutionTest, AddColumnAppendsDefault) {
  MemChunkStore store;
  auto table = SampleTable(&store);
  ASSERT_TRUE(table.ok());
  auto evolved = table->AddColumn("price", "0.00");
  ASSERT_TRUE(evolved.ok());
  EXPECT_EQ(evolved->columns(),
            (std::vector<std::string>{"id", "name", "qty", "price"}));
  auto row = evolved->GetRow("r2");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(**row, (std::vector<std::string>{"r2", "gadget", "7", "0.00"}));
  // Old version untouched (schema is versioned like everything else).
  EXPECT_EQ(table->columns().size(), 3u);
  ASSERT_TRUE(evolved->Validate().ok());
}

TEST(SchemaEvolutionTest, AddColumnRejectsDuplicateName) {
  MemChunkStore store;
  auto table = SampleTable(&store);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->AddColumn("name").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaEvolutionTest, DropColumnRemovesCells) {
  MemChunkStore store;
  auto table = SampleTable(&store);
  ASSERT_TRUE(table.ok());
  auto dropped = table->DropColumn(1);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->columns(), (std::vector<std::string>{"id", "qty"}));
  auto row = dropped->GetRow("r1");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(**row, (std::vector<std::string>{"r1", "5"}));
  EXPECT_FALSE(table->DropColumn(0).ok()) << "key column must be protected";
  EXPECT_FALSE(table->DropColumn(9).ok());
  ASSERT_TRUE(dropped->Validate().ok());
}

TEST(SchemaEvolutionTest, DropBeforeKeyColumnAdjustsIndex) {
  MemChunkStore store;
  auto table = FTable::Create(&store, {"extra", "id", "v"},
                              {{"x1", "r1", "a"}, {"x2", "r2", "b"}},
                              /*key_column=*/1);
  ASSERT_TRUE(table.ok());
  auto dropped = table->DropColumn(0);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->key_column(), 0u);
  auto row = dropped->GetRow("r1");
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->has_value());
  EXPECT_EQ(**row, (std::vector<std::string>{"r1", "a"}));
  ASSERT_TRUE(dropped->Validate().ok());
}

TEST(SchemaEvolutionTest, RenameColumnSharesRowTree) {
  MemChunkStore store;
  CsvGenOptions opts;
  opts.num_rows = 2000;
  auto table = FTable::FromCsv(&store, GenerateCsv(opts));
  ASSERT_TRUE(table.ok());
  uint64_t before = store.stats().physical_bytes;
  auto renamed = table->RenameColumn(2, "renamed");
  ASSERT_TRUE(renamed.ok());
  uint64_t delta = store.stats().physical_bytes - before;
  EXPECT_LT(delta, 256u) << "a rename must only rewrite the header chunk";
  EXPECT_EQ(renamed->rows().root(), table->rows().root());
  EXPECT_EQ(renamed->columns()[2], "renamed");
  EXPECT_FALSE(table->RenameColumn(0, "c1").ok()) << "collision rejected";
}

TEST(SchemaEvolutionTest, EvolutionIsVersionedThroughFacade) {
  ForkBase db(std::make_shared<MemChunkStore>());
  CsvGenOptions opts;
  opts.num_rows = 100;
  ASSERT_TRUE(db.PutTableFromCsv("ds", GenerateCsv(opts)).ok());
  auto v1 = db.Head("ds");
  ASSERT_TRUE(v1.ok());
  auto table = db.GetTable("ds");
  ASSERT_TRUE(table.ok());
  auto evolved = table->AddColumn("flag", "n");
  ASSERT_TRUE(evolved.ok());
  ASSERT_TRUE(db.Put("ds", Value::OfTable(evolved->id())).ok());

  // Time travel across the schema change.
  auto old_value = db.GetVersion(*v1);
  ASSERT_TRUE(old_value.ok());
  auto old_table = FTable::Attach(db.store(), old_value->root());
  ASSERT_TRUE(old_table.ok());
  EXPECT_EQ(old_table->columns().size(), 7u);
  EXPECT_EQ(db.GetTable("ds")->columns().size(), 8u);
}

TEST(SchemaEvolutionTest, DiffAcrossSchemaChangeRejected) {
  MemChunkStore store;
  auto table = SampleTable(&store);
  ASSERT_TRUE(table.ok());
  auto evolved = table->AddColumn("extra");
  ASSERT_TRUE(evolved.ok());
  EXPECT_FALSE(table->Diff(*evolved).ok()) << "schemas differ";
}

// ------------------------------------------------------------- object stat --

TEST(StatObjectTest, ReportsShapePerType) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ASSERT_TRUE(db.Put("prim", Value::Int(42)).ok());
  auto prim = db.StatObject("prim");
  ASSERT_TRUE(prim.ok());
  EXPECT_EQ(prim->type, ValueType::kInt);
  EXPECT_EQ(prim->entries, 1u);

  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 5000; ++i) {
    kvs.emplace_back("k" + std::to_string(100000 + i), "v");
  }
  ASSERT_TRUE(db.PutMap("map", kvs).ok());
  auto map_stat = db.StatObject("map");
  ASSERT_TRUE(map_stat.ok());
  EXPECT_EQ(map_stat->type, ValueType::kMap);
  EXPECT_EQ(map_stat->entries, 5000u);
  EXPECT_GT(map_stat->shape.leaf_nodes, 1u);
  EXPECT_GE(map_stat->shape.height, 2u);

  ASSERT_TRUE(db.PutBlob("blob", std::string(100000, 'b')).ok());
  auto blob_stat = db.StatObject("blob");
  ASSERT_TRUE(blob_stat.ok());
  EXPECT_EQ(blob_stat->entries, 100000u);

  CsvGenOptions opts;
  opts.num_rows = 500;
  ASSERT_TRUE(db.PutTableFromCsv("table", GenerateCsv(opts)).ok());
  auto table_stat = db.StatObject("table");
  ASSERT_TRUE(table_stat.ok());
  EXPECT_EQ(table_stat->type, ValueType::kTable);
  EXPECT_EQ(table_stat->entries, 500u);
}

TEST(StatObjectTest, MissingKeyIsNotFound) {
  ForkBase db(std::make_shared<MemChunkStore>());
  EXPECT_TRUE(db.StatObject("ghost").status().IsNotFound());
}

}  // namespace
}  // namespace forkbase

// Batched chunk I/O semantics: GetMany/PutMany ordering and missing-hash
// handling, in-batch dedup accounting, segment rollover inside one batch,
// crash recovery of a torn batched tail, and batch-aware cache fill.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "chunk/caching_chunk_store.h"
#include "chunk/file_chunk_store.h"
#include "chunk/mem_chunk_store.h"
#include "chunk/remote_chunk_store.h"
#include "util/random.h"

namespace forkbase {
namespace {

Chunk MakeTestChunk(const std::string& payload,
                    ChunkType type = ChunkType::kCell) {
  return Chunk::Make(type, payload);
}

std::vector<Chunk> MakeChunks(size_t n, uint64_t seed, size_t bytes = 64) {
  Rng rng(seed);
  std::vector<Chunk> chunks;
  chunks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    chunks.push_back(MakeTestChunk(rng.NextBytes(bytes)));
  }
  return chunks;
}

class FileBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fb_batch_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

// --------------------------------------------------- default (Mem) batch --

TEST(MemBatchTest, GetManyPreservesOrderAndFlagsMissing) {
  MemChunkStore store;
  auto chunks = MakeChunks(5, 1);
  ASSERT_TRUE(store.PutMany(chunks).ok());
  std::vector<Hash256> ids;
  for (const auto& c : chunks) ids.push_back(c.hash());
  ids.insert(ids.begin() + 2, Sha256(Slice("absent")));  // poison the middle
  auto results = store.GetMany(ids);
  ASSERT_EQ(results.size(), 6u);
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == 2) {
      EXPECT_TRUE(results[i].status().IsNotFound());
    } else {
      ASSERT_TRUE(results[i].ok()) << i;
      EXPECT_EQ(results[i]->hash(), ids[i]);
    }
  }
}

TEST(MemBatchTest, PutManyCountsInBatchDuplicatesAsDedup) {
  MemChunkStore store;
  Chunk a = MakeTestChunk("aaa");
  Chunk b = MakeTestChunk("bbb");
  std::vector<Chunk> batch{a, b, a, a};  // 2 in-batch duplicates
  ASSERT_TRUE(store.PutMany(batch).ok());
  auto stats = store.stats();
  EXPECT_EQ(stats.put_calls, 4u);
  EXPECT_EQ(stats.chunk_count, 2u);
  EXPECT_EQ(stats.dedup_hits, 2u);
  EXPECT_EQ(stats.logical_bytes, a.size() * 3 + b.size());
  EXPECT_EQ(stats.physical_bytes, a.size() + b.size());
}

TEST(MemBatchTest, PutManyRejectsInvalidChunkUpfront) {
  MemChunkStore store;
  std::vector<Chunk> batch{MakeTestChunk("ok"), Chunk()};
  EXPECT_FALSE(store.PutMany(batch).ok());
}

// -------------------------------------------------------- FileChunkStore --

TEST_F(FileBatchTest, PutManyGetManyRoundTrip) {
  auto store_or = FileChunkStore::Open(dir_);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;
  auto chunks = MakeChunks(100, 2, 100);
  ASSERT_TRUE(store.PutMany(chunks).ok());
  std::vector<Hash256> ids;
  for (const auto& c : chunks) ids.push_back(c.hash());
  auto results = store.GetMany(ids);
  ASSERT_EQ(results.size(), chunks.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i;
    EXPECT_EQ(results[i]->bytes().ToString(), chunks[i].bytes().ToString());
  }
  EXPECT_EQ(store.stats().chunk_count, chunks.size());
}

TEST_F(FileBatchTest, PutManyDedupsWithinBatchAndAgainstResident) {
  auto store_or = FileChunkStore::Open(dir_);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;
  Chunk resident = MakeTestChunk("already here");
  ASSERT_TRUE(store.Put(resident).ok());
  Chunk fresh = MakeTestChunk("fresh");
  std::vector<Chunk> batch{resident, fresh, fresh};
  ASSERT_TRUE(store.PutMany(batch).ok());
  auto stats = store.stats();
  EXPECT_EQ(stats.chunk_count, 2u);
  EXPECT_EQ(stats.dedup_hits, 2u);  // resident + in-batch duplicate
  EXPECT_EQ(stats.put_calls, 4u);   // 1 scalar + 3 batched
}

TEST_F(FileBatchTest, GetManyMissingSlotsDoNotFailTheBatch) {
  auto store_or = FileChunkStore::Open(dir_);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;
  auto chunks = MakeChunks(3, 3);
  ASSERT_TRUE(store.PutMany(chunks).ok());
  std::vector<Hash256> ids{chunks[0].hash(), Sha256(Slice("ghost-1")),
                           chunks[1].hash(), Sha256(Slice("ghost-2")),
                           chunks[2].hash()};
  auto results = store.GetMany(ids);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].status().IsNotFound());
  EXPECT_TRUE(results[2].ok());
  EXPECT_TRUE(results[3].status().IsNotFound());
  EXPECT_TRUE(results[4].ok());
}

TEST_F(FileBatchTest, BatchRollsSegmentsMidBatch) {
  FileChunkStore::Options options;
  options.segment_bytes = 4 * 1024;  // force rollover inside one batch
  auto store_or = FileChunkStore::Open(dir_, options);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;
  auto chunks = MakeChunks(64, 4, 512);
  ASSERT_TRUE(store.PutMany(chunks).ok());
  // Multiple segment files must exist.
  size_t segments = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".fbc") ++segments;
  }
  EXPECT_GT(segments, 1u);
  // Everything readable, across all segments, in one batched get.
  std::vector<Hash256> ids;
  for (const auto& c : chunks) ids.push_back(c.hash());
  for (const auto& r : store.GetMany(ids)) ASSERT_TRUE(r.ok());
}

TEST_F(FileBatchTest, BatchedWritesSurviveReopen) {
  auto chunks = MakeChunks(50, 5, 200);
  {
    auto store_or = FileChunkStore::Open(dir_);
    ASSERT_TRUE(store_or.ok());
    ASSERT_TRUE((*store_or)->PutMany(chunks).ok());
    // Store destroyed here — simulated clean process exit.
  }
  auto store_or = FileChunkStore::Open(dir_);
  ASSERT_TRUE(store_or.ok());
  std::vector<Hash256> ids;
  for (const auto& c : chunks) ids.push_back(c.hash());
  auto results = (*store_or)->GetMany(ids);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i;
    EXPECT_EQ(results[i]->bytes().ToString(), chunks[i].bytes().ToString());
  }
}

TEST_F(FileBatchTest, RecoversFromTornBatchedTail) {
  auto chunks = MakeChunks(20, 6, 300);
  std::string segment_path;
  {
    auto store_or = FileChunkStore::Open(dir_);
    ASSERT_TRUE(store_or.ok());
    ASSERT_TRUE((*store_or)->PutMany(chunks).ok());
    segment_path = dir_ + "/segment-0.fbc";
  }
  // Simulate a crash mid-batch: chop the file inside the final record.
  auto size = std::filesystem::file_size(segment_path);
  std::filesystem::resize_file(segment_path, size - 150);

  auto store_or = FileChunkStore::Open(dir_);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;
  // All but the torn last record recovered.
  EXPECT_EQ(store.stats().chunk_count, chunks.size() - 1);
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {
    auto got = store.Get(chunks[i].hash());
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(got->bytes().ToString(), chunks[i].bytes().ToString());
  }
  EXPECT_TRUE(store.Get(chunks.back().hash()).status().IsNotFound());
  // The tail was truncated to a record boundary: a fresh batch appends
  // cleanly and everything reads back.
  auto more = MakeChunks(5, 7, 300);
  ASSERT_TRUE(store.PutMany(more).ok());
  for (const auto& c : more) {
    ASSERT_TRUE(store.Get(c.hash()).ok());
  }
}

TEST_F(FileBatchTest, ScalarPutIsDurableWithoutExplicitFlush) {
  // Put publishes only after fflush, so bytes must be visible to an
  // independent reader without Flush() being called.
  auto store_or = FileChunkStore::Open(dir_);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;
  Chunk c = MakeTestChunk("flushed before publish");
  ASSERT_TRUE(store.Put(c).ok());
  std::ifstream raw(dir_ + "/segment-0.fbc", std::ios::binary);
  std::string on_disk((std::istreambuf_iterator<char>(raw)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(on_disk.find("flushed before publish"), std::string::npos);
}

TEST_F(FileBatchTest, FsyncOnFlushRoundTrips) {
  FileChunkStore::Options options;
  options.fsync_on_flush = true;
  auto store_or = FileChunkStore::Open(dir_, options);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;
  auto chunks = MakeChunks(8, 13);
  ASSERT_TRUE(store.PutMany(chunks).ok());
  ASSERT_TRUE(store.Flush().ok());
  for (const auto& c : chunks) {
    auto got = store.Get(c.hash());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->bytes().ToString(), c.bytes().ToString());
  }
}

// ----------------------------------------------------- CachingChunkStore --

TEST(CacheBatchTest, GetManyFillsCacheFromBaseInOneCall) {
  auto base = std::make_shared<MemChunkStore>();
  auto chunks = MakeChunks(10, 8);
  ASSERT_TRUE(base->PutMany(chunks).ok());
  CachingChunkStore cache(base, 1 << 20);
  std::vector<Hash256> ids;
  for (const auto& c : chunks) ids.push_back(c.hash());

  auto first = cache.GetMany(ids);
  for (const auto& r : first) ASSERT_TRUE(r.ok());
  EXPECT_EQ(cache.cache_stats().misses, 10u);

  auto second = cache.GetMany(ids);
  for (const auto& r : second) ASSERT_TRUE(r.ok());
  auto cstats = cache.cache_stats();
  EXPECT_EQ(cstats.misses, 10u) << "second read must be all cache hits";
  EXPECT_EQ(cstats.hits, 10u);
  // The base saw exactly one batched read.
  EXPECT_EQ(base->stats().get_calls, 10u);
}

TEST(CacheBatchTest, GetManyMixedHitsMissesAndAbsent) {
  auto base = std::make_shared<MemChunkStore>();
  auto chunks = MakeChunks(4, 9);
  ASSERT_TRUE(base->PutMany(chunks).ok());
  CachingChunkStore cache(base, 1 << 20);
  ASSERT_TRUE(cache.Get(chunks[0].hash()).ok());  // warm one entry

  std::vector<Hash256> ids{chunks[0].hash(), chunks[1].hash(),
                           Sha256(Slice("never-stored")), chunks[2].hash()};
  auto results = cache.GetMany(ids);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_TRUE(results[2].status().IsNotFound());
  EXPECT_TRUE(results[3].ok());
}

TEST(CacheBatchTest, PutManyWritesThroughAndCaches) {
  auto base = std::make_shared<MemChunkStore>();
  CachingChunkStore cache(base, 1 << 20);
  auto chunks = MakeChunks(6, 10);
  ASSERT_TRUE(cache.PutMany(chunks).ok());
  EXPECT_EQ(base->stats().chunk_count, 6u);
  std::vector<Hash256> ids;
  for (const auto& c : chunks) ids.push_back(c.hash());
  for (const auto& r : cache.GetMany(ids)) ASSERT_TRUE(r.ok());
  EXPECT_EQ(cache.cache_stats().misses, 0u) << "PutMany must prefill";
}

TEST(CacheBatchTest, BatchStatsMatchScalarSemantics) {
  // A batch with duplicate ids must account exactly like the equivalent
  // scalar sequence: the first occurrence of a cold id is a miss, every
  // later occurrence in the same batch is a hit (it is served by the fill
  // the first occurrence triggers), and the base store is asked once per
  // distinct id.
  auto base = std::make_shared<MemChunkStore>();
  auto chunks = MakeChunks(3, 12);
  ASSERT_TRUE(base->PutMany(chunks).ok());
  CachingChunkStore cache(base, 1 << 20);

  std::vector<Hash256> ids{chunks[0].hash(), chunks[1].hash(),
                           chunks[0].hash(), chunks[2].hash(),
                           chunks[0].hash(), chunks[1].hash()};
  auto results = cache.GetMany(ids);
  ASSERT_EQ(results.size(), 6u);
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i;
    EXPECT_EQ(results[i]->hash(), ids[i]) << i;
  }
  auto cstats = cache.cache_stats();
  EXPECT_EQ(cstats.misses, 3u) << "one miss per distinct cold id";
  EXPECT_EQ(cstats.hits, 3u) << "duplicates count as hits, like scalar Get";
  EXPECT_EQ(cstats.hits + cstats.misses, ids.size());
  EXPECT_EQ(base->stats().get_calls, 3u)
      << "the base must be asked once per distinct id";

  // Scalar replay of the same access pattern on a fresh cache agrees.
  CachingChunkStore scalar_cache(base, 1 << 20);
  for (const auto& id : ids) ASSERT_TRUE(scalar_cache.Get(id).ok());
  auto sstats = scalar_cache.cache_stats();
  EXPECT_EQ(sstats.misses, cstats.misses);
  EXPECT_EQ(sstats.hits, cstats.hits);
}

TEST(CacheBatchTest, DuplicateMissOfAbsentIdPropagatesPerSlot) {
  auto base = std::make_shared<MemChunkStore>();
  CachingChunkStore cache(base, 1 << 20);
  Hash256 ghost = Sha256(Slice("not-there"));
  std::vector<Hash256> ids{ghost, ghost};
  auto results = cache.GetMany(ids);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status().IsNotFound());
  EXPECT_TRUE(results[1].status().IsNotFound());
  // Scalar parity for the absent case too: Get(ghost); Get(ghost) is two
  // misses (NotFound never fills the cache), so the batch must be as well.
  auto cstats = cache.cache_stats();
  EXPECT_EQ(cstats.misses, 2u);
  EXPECT_EQ(cstats.hits, 0u);
}

TEST(CacheBatchTest, ExplicitShardingSpreadsEntries)  {
  auto base = std::make_shared<MemChunkStore>();
  CachingChunkStore cache(base, 1 << 20, /*shards=*/8);
  EXPECT_EQ(cache.shard_count(), 8u);
  auto chunks = MakeChunks(64, 11);
  ASSERT_TRUE(cache.PutMany(chunks).ok());
  EXPECT_EQ(cache.cache_stats().resident_bytes,
            64u * chunks[0].size());
}

// ------------------------------------ cache error propagation (audit) ----
//
// Regression tests for the miss-path Status audit: a transient cold-tier
// error reaching CachingChunkStore must surface in the caller's slots and
// must never be cached — not as a value, and not as "absent". The flaky
// base is a RemoteChunkStore over memory with a scripted fault schedule.

struct FlakyCacheRig {
  FlakyCacheRig() {
    backend = std::make_shared<MemChunkStore>();
    faults = std::make_shared<FaultSchedule>();
    RemoteChunkStore::Options options;
    options.faults = faults;
    remote = std::make_shared<RemoteChunkStore>(backend, options);
    cache = std::make_unique<CachingChunkStore>(remote, 1 << 20);
  }
  std::shared_ptr<MemChunkStore> backend;
  std::shared_ptr<FaultSchedule> faults;
  std::shared_ptr<RemoteChunkStore> remote;
  std::unique_ptr<CachingChunkStore> cache;
};

TEST(CacheErrorPropagation, ScalarTransientErrorSurfacesAndIsNotCached) {
  FlakyCacheRig rig;
  auto chunk = MakeTestChunk("cold-resident");
  ASSERT_TRUE(rig.backend->Put(chunk).ok());

  rig.faults->InjectOnce(FaultSchedule::Op::kGet,
                         {FaultSchedule::Kind::kTransient});
  auto failed = rig.cache->Get(chunk.hash());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError)
      << "transient error must surface as an error, not kNotFound";
  EXPECT_EQ(rig.cache->cache_stats().misses, 1u);

  // The error was not cached in either direction: the retry goes back to
  // the base (a second miss) and succeeds.
  auto retried = rig.cache->Get(chunk.hash());
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried->bytes().ToString(), chunk.bytes().ToString());
  auto stats = rig.cache->cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);

  // Now it is cached — served without another base round trip.
  ASSERT_TRUE(rig.cache->Get(chunk.hash()).ok());
  EXPECT_EQ(rig.cache->cache_stats().hits, 1u);
}

TEST(CacheErrorPropagation, BatchTransientErrorSurfacesPerMissSlot) {
  FlakyCacheRig rig;
  auto chunks = MakeChunks(3, 40);
  ASSERT_TRUE(rig.backend->PutMany(chunks).ok());
  // Warm one entry so the batch mixes a hit with two faulted misses.
  ASSERT_TRUE(rig.cache->Get(chunks[0].hash()).ok());

  std::vector<Hash256> ids{chunks[0].hash(), chunks[1].hash(),
                           chunks[2].hash()};
  rig.faults->InjectOnce(FaultSchedule::Op::kGetBatch,
                         {FaultSchedule::Kind::kTransient});
  auto slots = rig.cache->GetMany(ids);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_TRUE(slots[0].ok()) << "cached hit must not be poisoned";
  for (size_t i = 1; i < 3; ++i) {
    ASSERT_FALSE(slots[i].ok()) << i;
    EXPECT_EQ(slots[i].status().code(), StatusCode::kIOError) << i;
  }

  // Fault cleared: the same batch fully resolves, re-fetching the two
  // failed slots (they were never negatively cached).
  auto retried = rig.cache->GetMany(ids);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(retried[i].ok()) << i;
    EXPECT_EQ(retried[i]->bytes().ToString(),
              chunks[i].bytes().ToString());
  }
}

TEST(CacheErrorPropagation, AsyncMissPathPropagatesErrors) {
  FlakyCacheRig rig;
  auto chunks = MakeChunks(4, 41);
  ASSERT_TRUE(rig.backend->PutMany(chunks).ok());
  std::vector<Hash256> ids;
  for (const auto& c : chunks) ids.push_back(c.hash());

  rig.faults->InjectOnce(FaultSchedule::Op::kGetBatch,
                         {FaultSchedule::Kind::kTimeout});
  auto handle = rig.cache->GetManyAsync(ids);
  ASSERT_TRUE(handle.valid());
  auto slots = handle.Take();
  ASSERT_EQ(slots.size(), ids.size());
  for (const auto& slot : slots) {
    ASSERT_FALSE(slot.ok());
    EXPECT_EQ(slot.status().code(), StatusCode::kIOError);
  }

  auto retried = rig.cache->GetManyAsync(ids).Take();
  for (size_t i = 0; i < retried.size(); ++i) {
    ASSERT_TRUE(retried[i].ok()) << i;
    EXPECT_EQ(retried[i]->hash(), ids[i]);
  }
}

TEST(CacheErrorPropagation, NotFoundIsNotNegativelyCached) {
  FlakyCacheRig rig;
  auto chunk = MakeTestChunk("late-arrival");
  auto miss = rig.cache->Get(chunk.hash());
  EXPECT_TRUE(miss.status().IsNotFound());
  // The chunk appears in the backend later (another writer); the cache must
  // see it on the next read.
  ASSERT_TRUE(rig.backend->Put(chunk).ok());
  auto found = rig.cache->Get(chunk.hash());
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->bytes().ToString(), chunk.bytes().ToString());
}

TEST(CacheErrorPropagation, DuplicateMissSlotsAllCarryTheError) {
  // In-batch duplicates of a faulted miss: every slot fed by the failed
  // fetch carries the error, and the deferred duplicate accounting counts
  // misses (the duplicate would have missed again), not hits.
  FlakyCacheRig rig;
  auto chunk = MakeTestChunk("dup-error");
  ASSERT_TRUE(rig.backend->Put(chunk).ok());
  std::vector<Hash256> ids{chunk.hash(), chunk.hash(), chunk.hash()};

  rig.faults->InjectOnce(FaultSchedule::Op::kGetBatch,
                         {FaultSchedule::Kind::kTransient});
  auto slots = rig.cache->GetMany(ids);
  ASSERT_EQ(slots.size(), 3u);
  for (const auto& slot : slots) {
    ASSERT_FALSE(slot.ok());
    EXPECT_EQ(slot.status().code(), StatusCode::kIOError);
  }
  auto stats = rig.cache->cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
}

}  // namespace
}  // namespace forkbase

// Edge-case and robustness tests across layers: binary keys, oversize
// entries, degenerate splitter configs, malformed persistent bytes, empty
// objects, unicode-ish content, and decode hardening.
#include <gtest/gtest.h>

#include <map>

#include "chunk/mem_chunk_store.h"
#include "postree/diff.h"
#include "store/forkbase.h"
#include "types/table.h"
#include "util/random.h"

namespace forkbase {
namespace {

// ----------------------------------------------------------- binary keys --

TEST(EdgeCaseTest, KeysWithEmbeddedNulAndHighBytes) {
  MemChunkStore store;
  std::vector<std::pair<std::string, std::string>> kvs = {
      {std::string("\x00\x01", 2), "low"},
      {std::string("\x00\xff", 2), "mixed"},
      {std::string("\xff\xff", 2), "high"},
      {std::string("plain"), "ascii"},
  };
  std::sort(kvs.begin(), kvs.end());
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  for (const auto& [k, v] : kvs) {
    auto found = tree.Lookup(k);
    ASSERT_TRUE(found.ok());
    ASSERT_TRUE(found->has_value());
    EXPECT_EQ(**found, v);
  }
  ASSERT_TRUE(tree.Validate().ok());
}

TEST(EdgeCaseTest, EmptyKeyAndEmptyValue) {
  MemChunkStore store;
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf,
                                  {{"", ""}, {"k", ""}});
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  auto empty_key = tree.Lookup("");
  ASSERT_TRUE(empty_key.ok());
  ASSERT_TRUE(empty_key->has_value());
  EXPECT_EQ(**empty_key, "");
}

// ------------------------------------------------------- oversize entries --

TEST(EdgeCaseTest, EntryLargerThanMaxNodeBytes) {
  MemChunkStore store;
  // A single 100 KB value — far above max_bytes (8 KB). It must land in its
  // own oversized page (no entry ever spans pages).
  std::string huge = Rng(1).NextBytes(100 * 1024);
  auto info = PosTree::BuildKeyed(
      &store, ChunkType::kMapLeaf,
      {{"aaa", "small"}, {"big", huge}, {"zzz", "small"}});
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  auto found = tree.Lookup("big");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(**found, huge);
  ASSERT_TRUE(tree.Validate().ok());

  // And the oversize page still dedups across rebuilds.
  MemChunkStore store2;
  auto info2 = PosTree::BuildKeyed(
      &store2, ChunkType::kMapLeaf,
      {{"aaa", "small"}, {"big", huge}, {"zzz", "small"}});
  ASSERT_TRUE(info2.ok());
  EXPECT_EQ(info->root, info2->root);
}

TEST(EdgeCaseTest, ManyIdenticalValues) {
  // Identical values across keys: chunks still differ (keys embedded), but
  // build and lookup must be correct, and two builds identical.
  MemChunkStore store;
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 5000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    kvs.emplace_back(key, std::string(100, 'x'));
  }
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  EXPECT_EQ(*tree.Count(), 5000u);
  ASSERT_TRUE(tree.Validate().ok());
}

// ------------------------------------------------- degenerate split config --

TEST(EdgeCaseTest, TinyPagesMakeTallTrees) {
  MemChunkStore store;
  TreeConfig config;
  config.leaf = SplitConfig{8, 4, 16, 64};   // ~16 B pages
  config.index = SplitConfig{8, 4, 64, 256};
  auto kvs = std::vector<std::pair<std::string, std::string>>();
  Rng rng(2);
  std::map<std::string, std::string> sorted;
  while (sorted.size() < 2000) sorted[rng.NextString(8)] = rng.NextString(8);
  kvs.assign(sorted.begin(), sorted.end());
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs, config);
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->height, 3u);
  PosTree tree(&store, ChunkType::kMapLeaf, info->root, config);
  ASSERT_TRUE(tree.Validate().ok());
  for (int i = 0; i < 50; ++i) {
    const auto& [k, v] = kvs[rng.Uniform(kvs.size())];
    auto found = tree.Lookup(k);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(**found, v);
  }
  // Diff still works on tall trees.
  auto edited = tree.ApplyKeyedOps({KeyedOp{kvs[1000].first,
                                            std::string("changed")}});
  ASSERT_TRUE(edited.ok());
  PosTree tree2(&store, ChunkType::kMapLeaf, edited->root, config);
  auto deltas = DiffKeyed(tree, tree2);
  ASSERT_TRUE(deltas.ok());
  EXPECT_EQ(deltas->size(), 1u);
}

TEST(EdgeCaseTest, HugeQNeverFiresPattern) {
  // q=63: the pattern effectively never fires; everything is max-size pages.
  MemChunkStore store;
  TreeConfig config = TreeConfig::ForBlob();
  config.leaf.q_bits = 63;
  std::string data = Rng(3).NextBytes(200000);
  auto info = PosTree::BuildBlob(&store, data, config);
  ASSERT_TRUE(info.ok());
  PosTree tree(&store, ChunkType::kBlobLeaf, info->root, config);
  auto shape = tree.Shape();
  ASSERT_TRUE(shape.ok());
  // ceil(200000 / max_bytes) leaves.
  EXPECT_EQ(shape->leaf_nodes,
            (data.size() + config.leaf.max_bytes - 1) / config.leaf.max_bytes);
  std::string out;
  ASSERT_TRUE(tree.ReadBytes(0, data.size(), &out).ok());
  EXPECT_EQ(out, data);
}

// ---------------------------------------------------- malformed persistence --

TEST(EdgeCaseTest, MalformedLeafPayloadRejected) {
  MemChunkStore store;
  // A map leaf whose payload is a truncated entry.
  std::string bad;
  PutVarint64(&bad, 100);  // promises a 100-byte key that is not there
  Chunk chunk = Chunk::Make(ChunkType::kMapLeaf, bad);
  ASSERT_TRUE(store.Put(chunk).ok());
  PosTree tree(&store, ChunkType::kMapLeaf, chunk.hash());
  EXPECT_FALSE(tree.Entries().ok());
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(EdgeCaseTest, MalformedIndexNodeRejected) {
  MemChunkStore store;
  Chunk chunk = Chunk::Make(ChunkType::kMeta, std::string("short"));
  ASSERT_TRUE(store.Put(chunk).ok());
  PosTree tree(&store, ChunkType::kMapLeaf, chunk.hash());
  EXPECT_FALSE(tree.Count().ok());
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(EdgeCaseTest, FNodeDecodeHardening) {
  // Truncations at every prefix length must fail cleanly, never crash.
  FNode node;
  node.key = "k";
  node.value = Value::String("v");
  node.bases = {Sha256(Slice("b"))};
  node.author = "a";
  node.message = "m";
  node.logical_time = 1;
  Chunk good = node.ToChunk();
  std::string bytes = good.bytes().ToString();
  for (size_t len = 1; len < bytes.size(); ++len) {
    Chunk truncated = Chunk::FromBytes(bytes.substr(0, len));
    auto result = FNode::FromChunk(truncated);
    EXPECT_FALSE(result.ok()) << "accepted truncation at " << len;
  }
  // And with trailing garbage appended.
  Chunk padded = Chunk::FromBytes(bytes + "extra");
  EXPECT_FALSE(FNode::FromChunk(padded).ok());
}

TEST(EdgeCaseTest, TableHeaderDecodeHardening) {
  MemChunkStore store;
  auto table = FTable::Create(&store, {"id", "v"}, {{"r", "1"}});
  ASSERT_TRUE(table.ok());
  auto header = store.Get(table->id());
  ASSERT_TRUE(header.ok());
  std::string bytes = header->bytes().ToString();
  for (size_t len = 1; len + 1 < bytes.size(); ++len) {
    Chunk truncated = Chunk::FromBytes(bytes.substr(0, len));
    ASSERT_TRUE(store.Put(truncated).ok());
    EXPECT_FALSE(FTable::Attach(&store, truncated.hash()).ok())
        << "accepted truncation at " << len;
  }
}

// ---------------------------------------------------------- facade edges --

TEST(EdgeCaseTest, BranchNamesAreFreeform) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ASSERT_TRUE(db.Put("k", Value::Int(1), "feature/with/slashes").ok());
  ASSERT_TRUE(db.Put("k", Value::Int(2), "unicode-ÆØÅ").ok());
  auto branches = db.ListBranches("k");
  ASSERT_TRUE(branches.ok());
  EXPECT_EQ(branches->size(), 2u);
}

TEST(EdgeCaseTest, SelfMergeIsIdentity) {
  ForkBase db(std::make_shared<MemChunkStore>());
  auto uid = db.Put("k", Value::Int(1));
  ASSERT_TRUE(uid.ok());
  auto merged = db.Merge("k", "master", "master");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, *uid);
}

TEST(EdgeCaseTest, HistoryLimitRespected) {
  ForkBase db(std::make_shared<MemChunkStore>());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.Put("k", Value::Int(i)).ok());
  }
  auto history = db.History("k", "master", 5);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 5u);
  EXPECT_EQ((*history)[0].logical_time, 20u);
}

TEST(EdgeCaseTest, LargeValuesThroughFacade) {
  ForkBase db(std::make_shared<MemChunkStore>());
  std::string big = Rng(9).NextBytes(3 << 20);  // 3 MB blob
  ASSERT_TRUE(db.PutBlob("big", big).ok());
  auto blob = db.GetBlob("big");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob->Size(), big.size());
  auto middle = blob->Read(1 << 20, 128);
  ASSERT_TRUE(middle.ok());
  EXPECT_EQ(*middle, big.substr(1 << 20, 128));
  EXPECT_TRUE(db.Verify(*db.Head("big")).ok());
}

}  // namespace
}  // namespace forkbase

// Wire-protocol and server front-end tests: frame codec robustness against
// torn/oversized/garbage input, and a loopback ForkBaseServer multiplexing
// concurrent client sessions onto one instance — bit-exact reads, same-branch
// commits linearized through the group-commit queue, and the hardening edge:
// transport deadlines, handshake/idle/request expiry, rate limits with
// retry-after, overload shedding, and bounded-outbox backpressure against a
// reader that stops draining.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "chunk/mem_chunk_store.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/transport.h"
#include "net/wire.h"
#include "store/bundle.h"
#include "store/forkbase.h"
#include "util/random.h"

namespace forkbase {
namespace {

std::string TestAddress(const std::string& name) {
  return "unix:" + ::testing::TempDir() + name + ".sock";
}

// -- Frame codec --------------------------------------------------------------

TEST(FrameTest, TornFramesReassembleByteByByte) {
  std::string wire = EncodeFrame(Verb::kGet, Slice("alpha"));
  wire += EncodeFrame(Verb::kStat, Slice());
  wire += EncodeFrame(Verb::kPut, Slice(std::string(1000, 'x')));

  FrameParser parser;
  std::vector<Frame> frames;
  for (char c : wire) {
    parser.Feed(Slice(&c, 1));
    for (;;) {
      auto next = parser.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      frames.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].verb, Verb::kGet);
  EXPECT_EQ(frames[0].payload, "alpha");
  EXPECT_EQ(frames[1].verb, Verb::kStat);
  EXPECT_TRUE(frames[1].payload.empty());
  EXPECT_EQ(frames[2].verb, Verb::kPut);
  EXPECT_EQ(frames[2].payload, std::string(1000, 'x'));
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(WireTest, ErrorFrameRetryAfterRoundTrips) {
  std::string payload =
      EncodeError(Status::Unavailable("shedding load"), /*retry_after=*/750);
  uint64_t retry_after = 0;
  Status decoded = DecodeError(Slice(payload), &retry_after);
  EXPECT_EQ(decoded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(retry_after, 750u);
}

// Regression for the varint canonicality fix: an error frame whose
// retry-after trailer is an OVERLONG varint ("\xee\x00" pads 110 to two
// bytes) must not decode to a backoff hint. Before the decoder enforced
// minimal form this parsed as 110 — a hostile peer could steer client
// backoff with bytes PutVarint64 can never emit; now the malformed trailer
// is ignored and the hint stays 0 (the status itself still decodes).
TEST(WireTest, OverlongRetryAfterTrailerIsIgnored) {
  std::string payload = EncodeError(Status::Unavailable("shedding load"));
  payload += std::string("\xee\x00", 2);  // overlong encoding of 110
  uint64_t retry_after = 99;
  Status decoded = DecodeError(Slice(payload), &retry_after);
  EXPECT_EQ(decoded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(retry_after, 0u) << "overlong trailer decoded to a hint";
}

TEST(FrameTest, OversizedDeclarationRejectedBeforeAllocation) {
  // Header declares a payload far over the cap; the parser must reject it
  // from the length alone rather than waiting for (or allocating) 1 GB.
  std::string wire;
  PutFixed32(&wire, (1u << 30) + 1);  // length = 1 + 1 GiB payload
  wire.push_back(static_cast<char>(Verb::kGet));

  FrameParser parser(/*max_payload=*/1 << 20);
  parser.Feed(Slice(wire));
  auto next = parser.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  // Sticky: the stream is garbage from here on.
  parser.Feed(Slice(EncodeFrame(Verb::kStat, Slice())));
  EXPECT_FALSE(parser.Next().ok());
}

TEST(FrameTest, ZeroLengthAndUnknownVerbAreCorruption) {
  {
    std::string wire;
    PutFixed32(&wire, 0);  // length covers the verb byte; zero is garbage
    FrameParser parser;
    parser.Feed(Slice(wire));
    auto next = parser.Next();
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status().code(), StatusCode::kCorruption);
  }
  {
    std::string wire;
    PutFixed32(&wire, 1);
    wire.push_back(static_cast<char>(0xEE));  // not a Verb
    FrameParser parser;
    parser.Feed(Slice(wire));
    auto next = parser.Next();
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status().code(), StatusCode::kCorruption);
  }
}

TEST(FrameTest, GarbageBytesFailFast) {
  FrameParser parser;
  parser.Feed(Slice("\xff\xff\xff\xff not a frame at all"));
  EXPECT_FALSE(parser.Next().ok());
}

TEST(TransportTest, ParseAddressFamilies) {
  auto unix_ep = ParseAddress("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_ep.ok());
  EXPECT_EQ(unix_ep->kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep->path, "/tmp/x.sock");

  auto tcp_ep = ParseAddress("tcp:localhost:7878");
  ASSERT_TRUE(tcp_ep.ok());
  EXPECT_EQ(tcp_ep->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_ep->host, "localhost");
  EXPECT_EQ(tcp_ep->port, 7878);

  EXPECT_TRUE(IsNetworkAddress("tcp:h:1"));
  EXPECT_TRUE(IsNetworkAddress("unix:/p"));
  EXPECT_FALSE(IsNetworkAddress("bundle.bin"));
  EXPECT_FALSE(ParseAddress("tcp:no-port").ok());
  EXPECT_FALSE(ParseAddress("tcp:h:notanumber").ok());
  EXPECT_FALSE(ParseAddress("ftp:whatever").ok());
}

// -- Loopback server ----------------------------------------------------------

TEST(ServerTest, RoundTripAndErrors) {
  ForkBase db(std::make_shared<MemChunkStore>());
  auto server = ForkBaseServer::Start(&db, TestAddress("rt"));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto uid = client->Put("greeting", "hello", "master", "alice", "v1");
  ASSERT_TRUE(uid.ok()) << uid.status().ToString();
  auto got = client->Get("greeting", "master");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "hello");
  EXPECT_EQ(got->uid, *uid);
  // The server and the embedded instance are the same database.
  auto local = db.Get("greeting");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->ToString(), "hello");

  // Errors travel back as their Status.
  auto missing = client->Get("no-such-key", "master");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Conditional commit: a stale expected head is kAlreadyExists.
  Hash256 stale{};
  auto conflicted =
      client->Commit("greeting", "clobber", "master", "bob", "v2", &stale);
  EXPECT_EQ(conflicted.status().code(), StatusCode::kAlreadyExists);

  auto kvs = client->Stat();
  ASSERT_TRUE(kvs.ok());
  bool saw_keys = false;
  for (const auto& [k, v] : *kvs) {
    if (k == "keys") {
      saw_keys = true;
      EXPECT_EQ(v, "1");
    }
  }
  EXPECT_TRUE(saw_keys);
  (*server)->Stop();
}

TEST(ServerTest, EightConcurrentSessionsBitExact) {
  ForkBase::Options options;
  options.group_commit = true;
  ForkBase db(std::make_shared<MemChunkStore>(), options);
  auto server = ForkBaseServer::Start(&db, TestAddress("conc"));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr int kThreads = 8;
  constexpr int kCommits = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto client = ForkBaseClient::Connect((*server)->address());
      if (!client.ok()) {
        ++failures;
        return;
      }
      const std::string key = "k" + std::to_string(t);
      std::string last;
      for (int c = 0; c < kCommits; ++c) {
        last = "v" + std::to_string(t) + "-" + std::to_string(c) +
               std::string(2048, static_cast<char>('a' + t));
        auto uid = client->Put(key, last, "master", "t", "c");
        if (!uid.ok()) {
          ++failures;
          return;
        }
        auto got = client->Get(key, "master");
        if (!got.ok() || got->value != last || got->uid != *uid) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  for (int t = 0; t < kThreads; ++t) {
    auto history = db.History("k" + std::to_string(t));
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history->size(), static_cast<size_t>(kCommits));
  }
  auto stats = (*server)->stats();
  EXPECT_EQ(stats.sessions_accepted, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.protocol_errors, 0u);
  (*server)->Stop();
}

TEST(ServerTest, SameBranchCommitsLinearizedNotLost) {
  ForkBase::Options options;
  options.group_commit = true;
  ForkBase db(std::make_shared<MemChunkStore>(), options);
  auto server = ForkBaseServer::Start(&db, TestAddress("linear"));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr int kThreads = 8;
  constexpr int kCommits = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto client = ForkBaseClient::Connect((*server)->address());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int c = 0; c < kCommits; ++c) {
        const std::string tag =
            "t" + std::to_string(t) + "-c" + std::to_string(c);
        auto uid = client->Put("shared", tag, "master", "t", tag);
        if (!uid.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Every commit chained onto one first-parent history: none lost, none
  // forked away, and each session's own commits appear in its issue order.
  auto history = db.History("shared");
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), static_cast<size_t>(kThreads * kCommits));
  std::reverse(history->begin(), history->end());  // oldest first
  std::vector<int> next_commit(kThreads, 0);
  for (const auto& info : *history) {
    ASSERT_EQ(info.message[0], 't');
    const size_t dash = info.message.find("-c");
    ASSERT_NE(dash, std::string::npos);
    const int t = std::stoi(info.message.substr(1, dash - 1));
    const int c = std::stoi(info.message.substr(dash + 2));
    EXPECT_EQ(c, next_commit[t]) << "reordered commits from session " << t;
    next_commit[t] = c + 1;
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(next_commit[t], kCommits);
  (*server)->Stop();
}

TEST(ServerTest, GarbageSessionDoesNotDisturbOthers) {
  ForkBase db(std::make_shared<MemChunkStore>());
  auto server = ForkBaseServer::Start(&db, TestAddress("garbage"));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto good = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(good->Put("k", "v", "master", "a", "m").ok());

  {
    // A session that speaks garbage gets an error frame and the boot.
    auto raw = SocketStream::Connect((*server)->address());
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE((*raw)->WriteAll(Slice("\xff\xff\xff\xffgarbage")).ok());
    auto reply = ReadFrame(raw->get());
    if (reply.ok()) {
      EXPECT_EQ(reply->verb, Verb::kError);
      // And then EOF: the server hangs up.
      char byte;
      auto eof = (*raw)->ReadSome(&byte, 1);
      EXPECT_TRUE(eof.ok() && *eof == 0);
    }  // an IOError here just means the server closed first — also fine
  }
  {
    // A frame-shaped session that skips the HELLO is rejected too.
    auto raw = SocketStream::Connect((*server)->address());
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(WriteFrame(raw->get(), Verb::kStat, Slice()).ok());
    auto reply = ReadFrame(raw->get());
    if (reply.ok()) EXPECT_EQ(reply->verb, Verb::kError);
  }

  // The well-behaved session is unaffected.
  auto got = good->Get("k", "master");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v");
  EXPECT_GE((*server)->stats().protocol_errors, 1u);
  (*server)->Stop();
}

// -- Transport deadlines ------------------------------------------------------

TEST(TransportTest, ReadDeadlineFiresOnSilentPeer) {
  std::string bound;
  auto listen_fd = ListenOn(TestAddress("read-dl"), &bound);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();
  auto stream = SocketStream::Connect(bound);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  (*stream)->SetIoTimeout(80);
  char byte;
  auto n = (*stream)->ReadSome(&byte, 1);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kDeadlineExceeded);
  ::close(*listen_fd);
}

TEST(TransportTest, WriteDeadlineFiresOnStalledReader) {
  std::string bound;
  auto listen_fd = ListenOn(TestAddress("write-dl"), &bound);
  ASSERT_TRUE(listen_fd.ok());
  auto stream = SocketStream::Connect(bound);
  ASSERT_TRUE(stream.ok());
  (*stream)->SetIoTimeout(80);
  // Nobody ever accepts or reads: the socket buffers fill, then the
  // deadline converts the stall into an error instead of a hung writer.
  const std::string block(1 << 20, 'x');
  Status status = Status::OK();
  for (int i = 0; i < 64 && status.ok(); ++i) {
    status = (*stream)->WriteAll(Slice(block));
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  ::close(*listen_fd);
}

// -- Server deadlines ---------------------------------------------------------

TEST(ServerTest, HandshakeDeadlineDropsSilentConnections) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ForkBaseServer::Options options;
  options.handshake_timeout_millis = 100;
  auto server = ForkBaseServer::Start(&db, TestAddress("hs-dl"), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Connect and never speak. The server must not let the connection hold a
  // pre-HELLO slot forever: it answers with a deadline error and hangs up.
  auto raw = SocketStream::Connect((*server)->address());
  ASSERT_TRUE(raw.ok());
  (*raw)->SetIoTimeout(2'000);
  auto reply = ReadFrame(raw->get());
  if (reply.ok()) {
    ASSERT_EQ(reply->verb, Verb::kError);
    EXPECT_EQ(DecodeError(Slice(reply->payload)).code(),
              StatusCode::kDeadlineExceeded);
    char byte;
    auto eof = (*raw)->ReadSome(&byte, 1);
    EXPECT_TRUE(eof.ok() && *eof == 0);
  }  // an IOError just means the close beat the error frame — also fine

  // A client that does handshake promptly is unaffected.
  auto client = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto stats = (*server)->stats();
  EXPECT_GE(stats.deadline_disconnects, 1u);
  EXPECT_GE(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u)
      << "a server-imposed deadline is not the client's protocol error";
  (*server)->Stop();
}

TEST(ServerTest, IdleDeadlineClosesQuietSessions) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ForkBaseServer::Options options;
  options.idle_timeout_millis = 100;
  auto server = ForkBaseServer::Start(&db, TestAddress("idle-dl"), options);
  ASSERT_TRUE(server.ok());

  auto client = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Put("k", "v", "master", "a", "m").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_FALSE(client->Stat().ok()) << "the idle session should be gone";
  EXPECT_GE((*server)->stats().deadline_disconnects, 1u);
  (*server)->Stop();
}

// MemChunkStore whose reads stall long enough to trip a request deadline.
class SlowGetStore : public MemChunkStore {
 public:
  StatusOr<Chunk> Get(const Hash256& id) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    return MemChunkStore::Get(id);
  }
};

TEST(ServerTest, RequestDeadlineDisconnectsTheWaitingClient) {
  auto store = std::make_shared<SlowGetStore>();
  ForkBase db(store);
  ASSERT_TRUE(db.Put("k", Value::String("v"), "master", {"a", "m"}).ok());

  ForkBaseServer::Options options;
  options.request_timeout_millis = 100;
  auto server = ForkBaseServer::Start(&db, TestAddress("req-dl"), options);
  ASSERT_TRUE(server.ok());

  auto client = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(client.ok());
  // The GET parks a worker in the slow store; the poll loop's deadline
  // sweep fails the session long before the store wakes up.
  auto got = client->Get("k", "master");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().code() == StatusCode::kDeadlineExceeded ||
              got.status().code() == StatusCode::kIOError)
      << got.status().ToString();
  EXPECT_GE((*server)->stats().deadline_disconnects, 1u);

  // The server survives the abandoned worker and keeps serving.
  auto probe = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->Heads().ok());
  (*server)->Stop();
}

// -- Rate limiting and shedding ----------------------------------------------

TEST(ServerTest, SessionRateLimitRejectsWithRetryAfterThenRecovers) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ForkBaseServer::Options options;
  options.session_requests_per_sec = 2;  // burst 4
  auto server = ForkBaseServer::Start(&db, TestAddress("rps"), options);
  ASSERT_TRUE(server.ok());

  auto client = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(client.ok());
  int accepted = 0;
  Status limited = Status::OK();
  for (int i = 0; i < 12 && limited.ok(); ++i) {
    auto uid = client->Put("k", "v" + std::to_string(i), "master", "a", "m");
    if (uid.ok()) {
      ++accepted;
    } else {
      limited = uid.status();
    }
  }
  ASSERT_FALSE(limited.ok()) << "the bucket never ran dry";
  EXPECT_EQ(limited.code(), StatusCode::kUnavailable);
  EXPECT_GE(accepted, 1);
  const uint64_t hint = client->last_retry_after_millis();
  EXPECT_GT(hint, 0u) << "a rate-limit rejection must carry retry-after";

  // The session survived the rejection; honoring the hint succeeds.
  std::this_thread::sleep_for(std::chrono::milliseconds(hint + 200));
  EXPECT_TRUE(client->Put("k", "again", "master", "a", "m").ok());
  EXPECT_GE((*server)->stats().requests_rate_limited, 1u);
  (*server)->Stop();
}

TEST(ServerTest, SessionCapShedsNewConnectionsGracefully) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ForkBaseServer::Options options;
  options.max_sessions = 1;
  options.shed_retry_after_millis = 250;
  auto server = ForkBaseServer::Start(&db, TestAddress("cap"), options);
  ASSERT_TRUE(server.ok());

  auto first = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(first.ok());
  // Past the cap: the handshake round trip reads a structured shed error,
  // not a refused or silently hung connection.
  auto second = ForkBaseClient::Connect((*server)->address());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ((*server)->stats().sessions_shed, 1u);

  // The admitted session is unharmed.
  EXPECT_TRUE(first->Put("k", "v", "master", "a", "m").ok());
  (*server)->Stop();
}

TEST(ServerTest, IngressLimitedUploadCompletes) {
  ForkBase db(std::make_shared<MemChunkStore>());
  ForkBaseServer::Options options;
  options.session_ingress_bytes_per_sec = 128 * 1024;  // burst 256 KiB
  auto server = ForkBaseServer::Start(&db, TestAddress("ingress"), options);
  ASSERT_TRUE(server.ok());

  auto client = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(client.ok());
  Rng rng(99);
  std::string blob(384u << 10, '\0');
  for (auto& c : blob) c = static_cast<char>(rng.Uniform(256));

  // 384 KiB against a 256 KiB burst: the read pause must throttle the tail
  // at the configured rate — slower, but never failed or disconnected.
  const auto start = std::chrono::steady_clock::now();
  auto uid = client->PutBlob("big", Slice(blob), "master", "a", "m");
  ASSERT_TRUE(uid.ok()) << uid.status().ToString();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 400) << "the deficit should have been paced out";
  EXPECT_EQ(*db.GetBlob("big")->ReadAll(), blob);
  (*server)->Stop();
}

// -- Backpressure acceptance --------------------------------------------------

TEST(ServerTest, SlowPullReaderIsBoundedAndDisconnectedWhileOthersServe) {
  ForkBase::Options db_options;
  db_options.group_commit = true;
  ForkBase db(std::make_shared<MemChunkStore>(), db_options);
  // ~4 MiB of incompressible blob: pulling its closure must flow through
  // the bounded outbox rather than pile up server-side.
  Rng rng(1234);
  std::string blob(4u << 20, '\0');
  for (auto& c : blob) c = static_cast<char>(rng.Uniform(256));
  ASSERT_TRUE(db.PutBlob("blob", Slice(blob)).ok());
  auto head = db.Head("blob");
  ASSERT_TRUE(head.ok());

  constexpr uint64_t kOutboxCap = 256u << 10;
  constexpr size_t kPartBytes = 64u << 10;
  ForkBaseServer::Options options;
  options.max_outbox_bytes = kOutboxCap;
  options.part_bytes = kPartBytes;
  options.write_stall_timeout_millis = 300;
  auto server = ForkBaseServer::Start(&db, TestAddress("stall"), options);
  ASSERT_TRUE(server.ok());

  // The stalled reader: handshake, request the whole closure, read nothing.
  auto stalled = SocketStream::Connect((*server)->address());
  ASSERT_TRUE(stalled.ok());
  {
    std::string payload;
    PutFixed32(&payload, kProtocolMagic);
    PutVarint64(&payload, kProtocolVersion);
    ASSERT_TRUE(WriteFrame(stalled->get(), Verb::kHello, Slice(payload)).ok());
    auto reply = ReadFrame(stalled->get());
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->verb, Verb::kOk);
  }
  {
    std::string payload;
    AppendHashList(&payload, {*head});
    AppendHashList(&payload, {});
    ASSERT_TRUE(
        WriteFrame(stalled->get(), Verb::kPullDelta, Slice(payload)).ok());
  }

  // Eight healthy sessions pull the same closure bit-exact meanwhile.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      auto client = ForkBaseClient::Connect((*server)->address());
      if (!client.ok()) {
        ++failures;
        return;
      }
      auto delta = client->PullDelta({*head}, {});
      if (!delta.ok()) {
        ++failures;
        return;
      }
      // Importing re-verifies every chunk hash: bit-exact or it fails.
      MemChunkStore scratch;
      auto imported = ImportBundle(Slice(delta->bundle), &scratch);
      if (!imported.ok() || imported->head != *head) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // The stalled session gets force-closed by the write-stall deadline...
  for (int i = 0; i < 100 && (*server)->stats().stall_disconnects == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  auto stats = (*server)->stats();
  EXPECT_EQ(stats.stall_disconnects, 1u);
  // ...and per-session buffering stayed bounded throughout: at most the cap
  // plus one in-flight part (and its frame header) of overshoot — not the
  // 4 MiB closure.
  EXPECT_LE(stats.peak_outbox_bytes, kOutboxCap + kPartBytes + 64);
  (*server)->Stop();
}

TEST(ServerTest, StopIsIdempotentAndUnlinksSocket) {
  ForkBase db(std::make_shared<MemChunkStore>());
  const std::string address = TestAddress("stop");
  auto server = ForkBaseServer::Start(&db, address);
  ASSERT_TRUE(server.ok());
  (*server)->Stop();
  (*server)->Stop();
  // The socket file is gone, so a fresh server can bind the same address.
  auto again = ForkBaseServer::Start(&db, address);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  (*again)->Stop();
}

}  // namespace
}  // namespace forkbase

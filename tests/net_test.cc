// Wire-protocol and server front-end tests: frame codec robustness against
// torn/oversized/garbage input, and a loopback ForkBaseServer multiplexing
// concurrent client sessions onto one instance — bit-exact reads, and
// same-branch commits linearized through the group-commit queue.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "chunk/mem_chunk_store.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/transport.h"
#include "store/forkbase.h"

namespace forkbase {
namespace {

std::string TestAddress(const std::string& name) {
  return "unix:" + ::testing::TempDir() + name + ".sock";
}

// -- Frame codec --------------------------------------------------------------

TEST(FrameTest, TornFramesReassembleByteByByte) {
  std::string wire = EncodeFrame(Verb::kGet, Slice("alpha"));
  wire += EncodeFrame(Verb::kStat, Slice());
  wire += EncodeFrame(Verb::kPut, Slice(std::string(1000, 'x')));

  FrameParser parser;
  std::vector<Frame> frames;
  for (char c : wire) {
    parser.Feed(Slice(&c, 1));
    for (;;) {
      auto next = parser.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      frames.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].verb, Verb::kGet);
  EXPECT_EQ(frames[0].payload, "alpha");
  EXPECT_EQ(frames[1].verb, Verb::kStat);
  EXPECT_TRUE(frames[1].payload.empty());
  EXPECT_EQ(frames[2].verb, Verb::kPut);
  EXPECT_EQ(frames[2].payload, std::string(1000, 'x'));
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameTest, OversizedDeclarationRejectedBeforeAllocation) {
  // Header declares a payload far over the cap; the parser must reject it
  // from the length alone rather than waiting for (or allocating) 1 GB.
  std::string wire;
  PutFixed32(&wire, (1u << 30) + 1);  // length = 1 + 1 GiB payload
  wire.push_back(static_cast<char>(Verb::kGet));

  FrameParser parser(/*max_payload=*/1 << 20);
  parser.Feed(Slice(wire));
  auto next = parser.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  // Sticky: the stream is garbage from here on.
  parser.Feed(Slice(EncodeFrame(Verb::kStat, Slice())));
  EXPECT_FALSE(parser.Next().ok());
}

TEST(FrameTest, ZeroLengthAndUnknownVerbAreCorruption) {
  {
    std::string wire;
    PutFixed32(&wire, 0);  // length covers the verb byte; zero is garbage
    FrameParser parser;
    parser.Feed(Slice(wire));
    auto next = parser.Next();
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status().code(), StatusCode::kCorruption);
  }
  {
    std::string wire;
    PutFixed32(&wire, 1);
    wire.push_back(static_cast<char>(0xEE));  // not a Verb
    FrameParser parser;
    parser.Feed(Slice(wire));
    auto next = parser.Next();
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status().code(), StatusCode::kCorruption);
  }
}

TEST(FrameTest, GarbageBytesFailFast) {
  FrameParser parser;
  parser.Feed(Slice("\xff\xff\xff\xff not a frame at all"));
  EXPECT_FALSE(parser.Next().ok());
}

TEST(TransportTest, ParseAddressFamilies) {
  auto unix_ep = ParseAddress("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_ep.ok());
  EXPECT_EQ(unix_ep->kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep->path, "/tmp/x.sock");

  auto tcp_ep = ParseAddress("tcp:localhost:7878");
  ASSERT_TRUE(tcp_ep.ok());
  EXPECT_EQ(tcp_ep->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_ep->host, "localhost");
  EXPECT_EQ(tcp_ep->port, 7878);

  EXPECT_TRUE(IsNetworkAddress("tcp:h:1"));
  EXPECT_TRUE(IsNetworkAddress("unix:/p"));
  EXPECT_FALSE(IsNetworkAddress("bundle.bin"));
  EXPECT_FALSE(ParseAddress("tcp:no-port").ok());
  EXPECT_FALSE(ParseAddress("tcp:h:notanumber").ok());
  EXPECT_FALSE(ParseAddress("ftp:whatever").ok());
}

// -- Loopback server ----------------------------------------------------------

TEST(ServerTest, RoundTripAndErrors) {
  ForkBase db(std::make_shared<MemChunkStore>());
  auto server = ForkBaseServer::Start(&db, TestAddress("rt"));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto uid = client->Put("greeting", "hello", "master", "alice", "v1");
  ASSERT_TRUE(uid.ok()) << uid.status().ToString();
  auto got = client->Get("greeting", "master");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "hello");
  EXPECT_EQ(got->uid, *uid);
  // The server and the embedded instance are the same database.
  auto local = db.Get("greeting");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->ToString(), "hello");

  // Errors travel back as their Status.
  auto missing = client->Get("no-such-key", "master");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Conditional commit: a stale expected head is kAlreadyExists.
  Hash256 stale{};
  auto conflicted =
      client->Commit("greeting", "clobber", "master", "bob", "v2", &stale);
  EXPECT_EQ(conflicted.status().code(), StatusCode::kAlreadyExists);

  auto kvs = client->Stat();
  ASSERT_TRUE(kvs.ok());
  bool saw_keys = false;
  for (const auto& [k, v] : *kvs) {
    if (k == "keys") {
      saw_keys = true;
      EXPECT_EQ(v, "1");
    }
  }
  EXPECT_TRUE(saw_keys);
  (*server)->Stop();
}

TEST(ServerTest, EightConcurrentSessionsBitExact) {
  ForkBase::Options options;
  options.group_commit = true;
  ForkBase db(std::make_shared<MemChunkStore>(), options);
  auto server = ForkBaseServer::Start(&db, TestAddress("conc"));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr int kThreads = 8;
  constexpr int kCommits = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto client = ForkBaseClient::Connect((*server)->address());
      if (!client.ok()) {
        ++failures;
        return;
      }
      const std::string key = "k" + std::to_string(t);
      std::string last;
      for (int c = 0; c < kCommits; ++c) {
        last = "v" + std::to_string(t) + "-" + std::to_string(c) +
               std::string(2048, static_cast<char>('a' + t));
        auto uid = client->Put(key, last, "master", "t", "c");
        if (!uid.ok()) {
          ++failures;
          return;
        }
        auto got = client->Get(key, "master");
        if (!got.ok() || got->value != last || got->uid != *uid) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  for (int t = 0; t < kThreads; ++t) {
    auto history = db.History("k" + std::to_string(t));
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history->size(), static_cast<size_t>(kCommits));
  }
  auto stats = (*server)->stats();
  EXPECT_EQ(stats.sessions_accepted, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.protocol_errors, 0u);
  (*server)->Stop();
}

TEST(ServerTest, SameBranchCommitsLinearizedNotLost) {
  ForkBase::Options options;
  options.group_commit = true;
  ForkBase db(std::make_shared<MemChunkStore>(), options);
  auto server = ForkBaseServer::Start(&db, TestAddress("linear"));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr int kThreads = 8;
  constexpr int kCommits = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto client = ForkBaseClient::Connect((*server)->address());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int c = 0; c < kCommits; ++c) {
        const std::string tag =
            "t" + std::to_string(t) + "-c" + std::to_string(c);
        auto uid = client->Put("shared", tag, "master", "t", tag);
        if (!uid.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Every commit chained onto one first-parent history: none lost, none
  // forked away, and each session's own commits appear in its issue order.
  auto history = db.History("shared");
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), static_cast<size_t>(kThreads * kCommits));
  std::reverse(history->begin(), history->end());  // oldest first
  std::vector<int> next_commit(kThreads, 0);
  for (const auto& info : *history) {
    ASSERT_EQ(info.message[0], 't');
    const size_t dash = info.message.find("-c");
    ASSERT_NE(dash, std::string::npos);
    const int t = std::stoi(info.message.substr(1, dash - 1));
    const int c = std::stoi(info.message.substr(dash + 2));
    EXPECT_EQ(c, next_commit[t]) << "reordered commits from session " << t;
    next_commit[t] = c + 1;
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(next_commit[t], kCommits);
  (*server)->Stop();
}

TEST(ServerTest, GarbageSessionDoesNotDisturbOthers) {
  ForkBase db(std::make_shared<MemChunkStore>());
  auto server = ForkBaseServer::Start(&db, TestAddress("garbage"));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto good = ForkBaseClient::Connect((*server)->address());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(good->Put("k", "v", "master", "a", "m").ok());

  {
    // A session that speaks garbage gets an error frame and the boot.
    auto raw = SocketStream::Connect((*server)->address());
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE((*raw)->WriteAll(Slice("\xff\xff\xff\xffgarbage")).ok());
    auto reply = ReadFrame(raw->get());
    if (reply.ok()) {
      EXPECT_EQ(reply->verb, Verb::kError);
      // And then EOF: the server hangs up.
      char byte;
      auto eof = (*raw)->ReadSome(&byte, 1);
      EXPECT_TRUE(eof.ok() && *eof == 0);
    }  // an IOError here just means the server closed first — also fine
  }
  {
    // A frame-shaped session that skips the HELLO is rejected too.
    auto raw = SocketStream::Connect((*server)->address());
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(WriteFrame(raw->get(), Verb::kStat, Slice()).ok());
    auto reply = ReadFrame(raw->get());
    if (reply.ok()) EXPECT_EQ(reply->verb, Verb::kError);
  }

  // The well-behaved session is unaffected.
  auto got = good->Get("k", "master");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v");
  EXPECT_GE((*server)->stats().protocol_errors, 1u);
  (*server)->Stop();
}

TEST(ServerTest, StopIsIdempotentAndUnlinksSocket) {
  ForkBase db(std::make_shared<MemChunkStore>());
  const std::string address = TestAddress("stop");
  auto server = ForkBaseServer::Start(&db, address);
  ASSERT_TRUE(server.ok());
  (*server)->Stop();
  (*server)->Stop();
  // The socket file is gone, so a fresh server can bind the same address.
  auto again = ForkBaseServer::Start(&db, address);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  (*again)->Stop();
}

}  // namespace
}  // namespace forkbase

// Integration tests across modules: the demo's end-to-end scenarios on a
// real ForkBase instance — dataset loading with dedup (Fig. 4), branch /
// edit / diff / merge workflow (Fig. 5), tamper-evident versioning (Fig. 6),
// and a file-backed database surviving reopen.
#include <gtest/gtest.h>

#include <filesystem>

#include "chunk/caching_chunk_store.h"
#include "chunk/file_chunk_store.h"
#include "chunk/mem_chunk_store.h"
#include "store/forkbase.h"
#include "util/datagen.h"

namespace forkbase {
namespace {

TEST(IntegrationTest, Fig4DedupScenario) {
  // Load dataset-1 (~338 KB), then dataset-2 (single-word difference) as a
  // SEPARATE dataset; the second load must add only a sliver of storage.
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);

  CsvGenOptions opts;
  opts.target_bytes = 338 * 1024;
  CsvDocument ds1 = GenerateCsv(opts);
  CsvDocument ds2 = EditOneWord(ds1, ds1.rows.size() / 2, 2, "VendorX");

  ASSERT_TRUE(db.PutTableFromCsv("dataset-1", ds1).ok());
  uint64_t after_first = store->stats().physical_bytes;
  ASSERT_TRUE(db.PutTableFromCsv("dataset-2", ds2).ok());
  uint64_t delta = store->stats().physical_bytes - after_first;

  EXPECT_GT(after_first, 200 * 1024u) << "first load pays full storage";
  EXPECT_LT(delta, 32 * 1024u)
      << "second load must cost only the changed chunks, got " << delta;
  EXPECT_LT(delta * 10, after_first);
}

TEST(IntegrationTest, CollaborativeBranchEditMergeWorkflow) {
  // The demo's Fig. 5 flow: load a dataset, branch it for VendorX, edit the
  // branch, run a differential query, then merge back.
  ForkBase db(std::make_shared<MemChunkStore>());
  CsvGenOptions opts;
  opts.num_rows = 2000;
  ASSERT_TRUE(
      db.PutTableFromCsv("Dataset-1", GenerateCsv(opts), 0, "master",
                         {"admin-a", "initial load"})
          .ok());
  ASSERT_TRUE(db.Branch("Dataset-1", "VendorX").ok());

  auto vendor_table = db.GetTable("Dataset-1", "VendorX");
  ASSERT_TRUE(vendor_table.ok());
  auto edited = vendor_table->UpdateCell("r00001000", 2, "vendor-corrected");
  ASSERT_TRUE(edited.ok());
  ASSERT_TRUE(db.Put("Dataset-1", Value::OfTable(edited->id()), "VendorX",
                     {"admin-b", "vendor correction"})
                  .ok());

  // Differential query between master and VendorX.
  auto diff = db.Diff("Dataset-1", "master", "VendorX");
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->identical);
  ASSERT_EQ(diff->rows.size(), 1u);
  EXPECT_EQ(diff->rows[0].key, "r00001000");
  EXPECT_EQ(diff->rows[0].changed_columns, (std::vector<size_t>{2}));

  // Merge the vendor branch back into master.
  auto merged = db.Merge("Dataset-1", "master", "VendorX");
  ASSERT_TRUE(merged.ok());
  auto master_table = db.GetTable("Dataset-1", "master");
  ASSERT_TRUE(master_table.ok());
  EXPECT_EQ(**master_table->GetCell("r00001000", 2), "vendor-corrected");

  // After the merge, the branches are content-identical.
  auto diff2 = db.Diff("Dataset-1", "master", "VendorX");
  ASSERT_TRUE(diff2.ok());
  EXPECT_TRUE(diff2->identical);
}

TEST(IntegrationTest, Fig6TamperEvidenceScenario) {
  // Put → stamp uid → tamper storage → validation fails; untampered copies
  // keep verifying.
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 3000;
  auto v1 = db.PutTableFromCsv("ds", GenerateCsv(opts), 0, "master",
                               {"alice", "load"});
  ASSERT_TRUE(v1.ok());
  opts.seed = 8;
  auto table = db.GetTable("ds");
  ASSERT_TRUE(table.ok());
  auto t2 = table->UpdateCell("r00000001", 1, "update");
  ASSERT_TRUE(t2.ok());
  auto v2 = db.Put("ds", Value::OfTable(t2->id()), "master",
                   {"alice", "edit"});
  ASSERT_TRUE(v2.ok());

  ASSERT_TRUE(db.Verify(*v1).ok());
  ASSERT_TRUE(db.Verify(*v2).ok());

  // Malicious provider flips one byte in a shared data chunk.
  std::vector<Hash256> chunks;
  ASSERT_TRUE(table->rows().tree().ReachableChunks(&chunks).ok());
  ASSERT_TRUE(store->TamperForTesting(chunks[chunks.size() / 2], 11, 0x04));

  EXPECT_TRUE(db.Verify(*v1).IsCorruption());
  // v2 shares most chunks with v1, so it is affected too (same page).
  EXPECT_TRUE(db.Verify(*v2).IsCorruption());
}

TEST(IntegrationTest, FileBackedDatabaseSurvivesReopen) {
  std::string dir = ::testing::TempDir() + "/fb_integration_db";
  std::filesystem::remove_all(dir);
  Hash256 head;
  {
    auto store_or = FileChunkStore::Open(dir);
    ASSERT_TRUE(store_or.ok());
    ForkBase db(std::shared_ptr<ChunkStore>(std::move(*store_or)));
    ASSERT_TRUE(db.PutMap("config", {{"mode", "prod"}, {"zone", "sg"}}).ok());
    ASSERT_TRUE(db.Branch("config", "staging").ok());
    auto map = db.GetMap("config", "staging");
    ASSERT_TRUE(map.ok());
    auto edited = map->Set("mode", "staging");
    ASSERT_TRUE(edited.ok());
    ASSERT_TRUE(
        db.Put("config", Value::OfMap(edited->root()), "staging").ok());
    auto h = db.Head("config", "staging");
    ASSERT_TRUE(h.ok());
    head = *h;
    ASSERT_TRUE(db.branches().SaveToFile(dir + "/branches.tsv").ok());
  }
  {
    auto store_or = FileChunkStore::Open(dir);
    ASSERT_TRUE(store_or.ok());
    ForkBase db(std::shared_ptr<ChunkStore>(std::move(*store_or)));
    ASSERT_TRUE(db.branches().LoadFromFile(dir + "/branches.tsv").ok());
    EXPECT_EQ(*db.Head("config", "staging"), head);
    auto map = db.GetMap("config", "staging");
    ASSERT_TRUE(map.ok());
    EXPECT_EQ(**map->Get("mode"), "staging");
    EXPECT_EQ(**map->Get("zone"), "sg");
    EXPECT_TRUE(db.Verify(head).ok());
  }
  std::filesystem::remove_all(dir);
}

TEST(IntegrationTest, CachedFileStoreBehavesIdentically) {
  std::string dir = ::testing::TempDir() + "/fb_cached_db";
  std::filesystem::remove_all(dir);
  auto file_or = FileChunkStore::Open(dir);
  ASSERT_TRUE(file_or.ok());
  auto cached = std::make_shared<CachingChunkStore>(
      std::shared_ptr<ChunkStore>(std::move(*file_or)), 4 << 20);
  ForkBase db(cached);
  CsvGenOptions opts;
  opts.num_rows = 1000;
  auto uid = db.PutTableFromCsv("ds", GenerateCsv(opts));
  ASSERT_TRUE(uid.ok());
  auto table = db.GetTable("ds");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table->NumRows(), 1000u);
  EXPECT_TRUE(db.Verify(*uid).ok());
  EXPECT_GT(cached->cache_stats().hits, 0u);
  std::filesystem::remove_all(dir);
}

TEST(IntegrationTest, ManyVersionArchiveStaysCompact) {
  // Archive 60 versions of a 1000-row table with one cell edited per
  // version. Physical growth must be a small multiple of the edit cost,
  // not of the dataset size (the paper's "archiving massive data versions").
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 1000;
  CsvDocument doc = GenerateCsv(opts);
  ASSERT_TRUE(db.PutTableFromCsv("archive", doc).ok());
  uint64_t baseline = store->stats().physical_bytes;

  for (int v = 0; v < 60; ++v) {
    auto table = db.GetTable("archive");
    ASSERT_TRUE(table.ok());
    auto edited = table->UpdateCell(
        "r" + std::string(7 - std::to_string(v).size(), '0') +
            std::to_string(v) + "0",
        3, "edit-" + std::to_string(v));
    if (!edited.ok()) {
      // Key formatting edge: fall back to a fixed row.
      edited = table->UpdateCell("r00000001", 3, "edit-" + std::to_string(v));
    }
    ASSERT_TRUE(edited.ok());
    ASSERT_TRUE(db.Put("archive", Value::OfTable(edited->id())).ok());
  }
  uint64_t growth = store->stats().physical_bytes - baseline;
  EXPECT_LT(growth, baseline * 3)
      << "60 single-cell versions must not cost 60 full copies (growth="
      << growth << ", baseline=" << baseline << ")";
  auto history = db.History("archive");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 61u);
}

}  // namespace
}  // namespace forkbase

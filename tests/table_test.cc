// Unit tests for FTable: schema handling, CSV round trips, row/cell CRUD,
// selection, row+column diff, and column-refined three-way merge.
#include <gtest/gtest.h>

#include "chunk/mem_chunk_store.h"
#include "types/table.h"
#include "util/datagen.h"
#include "util/random.h"

namespace forkbase {
namespace {

FTable MakeTable(MemChunkStore* store, size_t rows = 100, uint64_t seed = 1) {
  CsvGenOptions opts;
  opts.num_rows = rows;
  opts.seed = seed;
  auto table = FTable::FromCsv(store, GenerateCsv(opts));
  EXPECT_TRUE(table.ok());
  return *table;
}

TEST(FTableTest, CreateAndLookup) {
  MemChunkStore store;
  auto table = FTable::Create(&store, {"id", "name", "qty"},
                              {{"r1", "widget", "5"},
                               {"r2", "gadget", "7"},
                               {"r3", "doodad", "0"}});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table->NumRows(), 3u);
  auto row = table->GetRow("r2");
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->has_value());
  EXPECT_EQ(**row, (std::vector<std::string>{"r2", "gadget", "7"}));
  auto cell = table->GetCell("r3", 1);
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(**cell, "doodad");
  auto missing = table->GetRow("r9");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
}

TEST(FTableTest, RejectsBadInputs) {
  MemChunkStore store;
  EXPECT_FALSE(FTable::Create(&store, {}, {}).ok());
  EXPECT_FALSE(FTable::Create(&store, {"id"}, {}, 5).ok());
  EXPECT_FALSE(FTable::Create(&store, {"id", "v"}, {{"r1"}}).ok());
  EXPECT_FALSE(
      FTable::Create(&store, {"id", "v"}, {{"r1", "a"}, {"r1", "b"}}).ok())
      << "duplicate primary keys must be rejected";
}

TEST(FTableTest, AttachByIdRestoresSchema) {
  MemChunkStore store;
  FTable table = MakeTable(&store);
  auto attached = FTable::Attach(&store, table.id());
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(attached->columns(), table.columns());
  EXPECT_EQ(attached->key_column(), table.key_column());
  EXPECT_EQ(*attached->NumRows(), *table.NumRows());
}

TEST(FTableTest, CsvRoundTrip) {
  MemChunkStore store;
  CsvGenOptions opts;
  opts.num_rows = 200;
  CsvDocument doc = GenerateCsv(opts);
  auto table = FTable::FromCsv(&store, doc);
  ASSERT_TRUE(table.ok());
  auto exported = table->ToCsv();
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(exported->header, doc.header);
  // Row ids are generated pre-sorted, so order survives.
  EXPECT_EQ(exported->rows, doc.rows);
}

TEST(FTableTest, UpsertDeleteUpdateCell) {
  MemChunkStore store;
  FTable table = MakeTable(&store, 50);
  auto upserted = table.UpsertRow({"zz-new", "a", "b", "c", "d", "e", "f"});
  ASSERT_TRUE(upserted.ok());
  EXPECT_EQ(*upserted->NumRows(), 51u);

  auto updated = upserted->UpdateCell("zz-new", 2, "CHANGED");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(**updated->GetCell("zz-new", 2), "CHANGED");
  EXPECT_FALSE(updated->UpdateCell("zz-new", 0, "nope").ok())
      << "primary key updates must be rejected";
  EXPECT_TRUE(updated->UpdateCell("absent", 2, "x").status().IsNotFound());

  auto deleted = updated->DeleteRow("zz-new");
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted->NumRows(), 50u);
  // Original table unchanged (immutability).
  EXPECT_EQ(*table.NumRows(), 50u);
}

TEST(FTableTest, SelectFiltersRows) {
  MemChunkStore store;
  auto table = FTable::Create(&store, {"id", "qty"},
                              {{"a", "1"}, {"b", "2"}, {"c", "3"}});
  ASSERT_TRUE(table.ok());
  auto selected = table->Select([](const std::vector<std::string>& row) {
    return row[1] >= "2";
  });
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 2u);
}

TEST(FTableTest, DiffRefinesColumns) {
  MemChunkStore store;
  FTable table = MakeTable(&store, 300, 9);
  auto edited = table.UpdateCell("r00000042", 3, "EDITED");
  ASSERT_TRUE(edited.ok());
  auto deltas = table.Diff(*edited);
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), 1u);
  EXPECT_EQ((*deltas)[0].key, "r00000042");
  EXPECT_EQ((*deltas)[0].changed_columns, (std::vector<size_t>{3}));
}

TEST(FTableTest, DiffSchemasMustMatch) {
  MemChunkStore store;
  auto a = FTable::Create(&store, {"id", "x"}, {{"r", "1"}});
  auto b = FTable::Create(&store, {"id", "y"}, {{"r", "1"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->Diff(*b).ok());
}

TEST(FTableTest, IdCoversContentAndSchema) {
  MemChunkStore store;
  auto a = FTable::Create(&store, {"id", "v"}, {{"r", "1"}});
  auto b = FTable::Create(&store, {"id", "v"}, {{"r", "1"}});
  auto c = FTable::Create(&store, {"id", "w"}, {{"r", "1"}});
  auto d = FTable::Create(&store, {"id", "v"}, {{"r", "2"}});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_EQ(a->id(), b->id());
  EXPECT_NE(a->id(), c->id()) << "schema participates in identity";
  EXPECT_NE(a->id(), d->id()) << "content participates in identity";
}

TEST(FTableMergeTest, DisjointRowsMerge) {
  MemChunkStore store;
  FTable base = MakeTable(&store, 100, 10);
  auto left = base.UpdateCell("r00000010", 1, "LEFT");
  auto right = base.UpdateCell("r00000090", 2, "RIGHT");
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  auto merged = FTable::Merge3(base, *left, *right);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(**merged->GetCell("r00000010", 1), "LEFT");
  EXPECT_EQ(**merged->GetCell("r00000090", 2), "RIGHT");
}

TEST(FTableMergeTest, SameRowDifferentColumnsMerges) {
  // The column-refinement the paper's data model enables: both sides touch
  // the same row but different columns — no conflict.
  MemChunkStore store;
  FTable base = MakeTable(&store, 100, 11);
  auto left = base.UpdateCell("r00000050", 1, "LEFT");
  auto right = base.UpdateCell("r00000050", 4, "RIGHT");
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  auto merged = FTable::Merge3(base, *left, *right);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(**merged->GetCell("r00000050", 1), "LEFT");
  EXPECT_EQ(**merged->GetCell("r00000050", 4), "RIGHT");
}

TEST(FTableMergeTest, SameCellConflictsStrict) {
  MemChunkStore store;
  FTable base = MakeTable(&store, 100, 12);
  auto left = base.UpdateCell("r00000050", 1, "LEFT");
  auto right = base.UpdateCell("r00000050", 1, "RIGHT");
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  auto strict = FTable::Merge3(base, *left, *right, MergePolicy::kStrict);
  EXPECT_TRUE(strict.status().IsMergeConflict());
  auto prefer = FTable::Merge3(base, *left, *right, MergePolicy::kPreferLeft);
  ASSERT_TRUE(prefer.ok());
  EXPECT_EQ(**prefer->GetCell("r00000050", 1), "LEFT");
}

TEST(FTableMergeTest, DeleteVsUntouchedMerges) {
  MemChunkStore store;
  FTable base = MakeTable(&store, 50, 13);
  auto left = base.DeleteRow("r00000025");
  auto right = base.UpdateCell("r00000030", 1, "R");
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  auto merged = FTable::Merge3(base, *left, *right);
  ASSERT_TRUE(merged.ok());
  auto gone = merged->GetRow("r00000025");
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone->has_value());
  EXPECT_EQ(**merged->GetCell("r00000030", 1), "R");
}

TEST(FTableTest, ValidateDetectsRowTampering) {
  MemChunkStore store;
  FTable table = MakeTable(&store, 2000, 14);
  ASSERT_TRUE(table.Validate().ok());
  std::vector<Hash256> chunks;
  ASSERT_TRUE(table.rows().tree().ReachableChunks(&chunks).ok());
  ASSERT_TRUE(store.TamperForTesting(chunks[chunks.size() / 2], 7, 0x02));
  EXPECT_FALSE(table.Validate().ok());
}

TEST(FTableTest, RowCodecRejectsMalformed) {
  std::vector<std::string> cells;
  EXPECT_FALSE(FTable::DecodeRow(Slice("\x05nope", 5), 2, &cells));
  std::string good = FTable::EncodeRow({"a", "bb"});
  EXPECT_TRUE(FTable::DecodeRow(good, 2, &cells));
  EXPECT_EQ(cells, (std::vector<std::string>{"a", "bb"}));
  EXPECT_FALSE(FTable::DecodeRow(good, 3, &cells));
  EXPECT_FALSE(FTable::DecodeRow(good, 1, &cells)) << "trailing bytes";
}

}  // namespace
}  // namespace forkbase

// Dataset management scenario (Fig. 1 "Dataset Management", Fig. 4-5).
//
// A data engineer archives evolving CSV snapshots of a dataset. ForkBase
// stores each snapshot as a relational-table object; identical rows across
// versions share chunks, old versions stay addressable, differential
// queries between any two versions are cheap, and the whole thing can be
// exported back to CSV.
//
// Build & run:  ./build/examples/dataset_versioning
#include <cstdio>

#include "chunk/mem_chunk_store.h"
#include "store/forkbase.h"
#include "util/datagen.h"

using namespace forkbase;

int main() {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);

  // Day 0: ingest the initial snapshot (synthetic stand-in for a real CSV).
  CsvGenOptions opts;
  opts.num_rows = 5000;
  CsvDocument snapshot = GenerateCsv(opts);
  auto v0 = db.PutTableFromCsv("sales", snapshot, 0, "master",
                               {"etl", "day-0 snapshot"});
  if (!v0.ok()) {
    std::printf("load failed: %s\n", v0.status().ToString().c_str());
    return 1;
  }
  uint64_t day0_bytes = store->stats().physical_bytes;
  std::printf("day 0: %zu rows, storage %.1f KB, uid %s...\n",
              snapshot.rows.size(), day0_bytes / 1024.0,
              v0->ToBase32().substr(0, 16).c_str());

  // Days 1..14: small daily edits; each day is one commit.
  std::vector<Hash256> daily;
  daily.push_back(*v0);
  for (int day = 1; day <= 14; ++day) {
    snapshot = EditCells(snapshot, 25, /*seed=*/day);
    auto uid = db.PutTableFromCsv("sales", snapshot, 0, "master",
                                  {"etl", "day-" + std::to_string(day)});
    if (!uid.ok()) return 1;
    daily.push_back(*uid);
  }
  uint64_t total_bytes = store->stats().physical_bytes;
  std::printf("after 14 daily versions: storage %.1f KB (naive: %.1f KB), "
              "dedup %.1fx\n",
              total_bytes / 1024.0,
              15.0 * CsvBytes(snapshot) / 1024.0,
              store->stats().DedupRatio());

  // Differential query: what changed between day 3 and day 11?
  auto diff = db.DiffVersions(daily[3], daily[11]);
  if (!diff.ok()) return 1;
  std::printf("day 3 -> day 11: %zu rows changed (of %zu), diff touched %llu "
              "nodes\n",
              diff->rows.size(), snapshot.rows.size(),
              static_cast<unsigned long long>(diff->metrics.nodes_loaded));

  // Time travel: read one cell as of day 5.
  auto day5 = db.GetVersion(daily[5]);
  if (!day5.ok()) return 1;
  auto day5_table = FTable::Attach(store.get(), day5->root());
  if (!day5_table.ok()) return 1;
  auto cell = day5_table->GetCell("r00002500", 3);
  if (!cell.ok() || !cell->has_value()) return 1;
  std::printf("cell r00002500[c2] as of day 5: \"%s\"\n", (*cell)->c_str());

  // Export the current head back to CSV.
  auto head_table = db.GetTable("sales");
  if (!head_table.ok()) return 1;
  auto csv = head_table->ToCsv();
  if (!csv.ok()) return 1;
  std::printf("exported head snapshot: %zu rows, %.1f KB of CSV\n",
              csv->rows.size(), WriteCsv(*csv).size() / 1024.0);

  // Every archived version remains verifiable against its uid.
  for (int day : {0, 7, 14}) {
    Status verify = db.Verify(daily[day]);
    std::printf("verify day %-2d: %s\n", day, verify.ToString().c_str());
    if (!verify.ok()) return 1;
  }
  return 0;
}

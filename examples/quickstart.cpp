// Quickstart: the ForkBase public API in five minutes.
//
// Covers the paper's core verbs: Put (with uid stamping), Get, Branch,
// Diff, Merge, History and Verify, over an in-memory chunk store.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "chunk/mem_chunk_store.h"
#include "store/forkbase.h"

using namespace forkbase;

#define CHECK_OK(expr)                                      \
  do {                                                      \
    auto _st = (expr);                                      \
    if (!_st.ok()) {                                        \
      std::printf("FAILED: %s\n", _st.ToString().c_str());  \
      return 1;                                             \
    }                                                       \
  } while (0)

int main() {
  // A ForkBase instance over a (deduplicating, content-addressed) store.
  ForkBase db(std::make_shared<MemChunkStore>());

  // 1. Commit a map object. Every Put returns a tamper-evident version uid.
  auto v1 = db.PutMap("inventory",
                      {{"widget", "120"}, {"gadget", "45"}, {"doodad", "7"}},
                      "master", {"alice", "initial inventory"});
  if (!v1.ok()) return 1;
  std::printf("committed version %s\n", v1->ToBase32().c_str());

  // 2. Branch it — zero-copy, just a new head pointer.
  CHECK_OK(db.Branch("inventory", "audit-2026"));

  // 3. Edit the branch functionally: the master head is untouched.
  auto audit_map = db.GetMap("inventory", "audit-2026");
  if (!audit_map.ok()) return 1;
  auto corrected = audit_map->Set("doodad", "9");
  if (!corrected.ok()) return 1;
  auto v2 = db.Put("inventory", Value::OfMap(corrected->root()), "audit-2026",
                   {"bob", "audit correction"});
  if (!v2.ok()) return 1;

  // Meanwhile master advances too (disjoint edit -> clean 3-way merge).
  auto master_map = db.GetMap("inventory");
  if (!master_map.ok()) return 1;
  auto restocked = master_map->Set("widget", "150");
  if (!restocked.ok()) return 1;
  CHECK_OK(db.Put("inventory", Value::OfMap(restocked->root()), "master",
                  {"alice", "restock widgets"})
               .status());

  // 4. Differential query between the branches (hash-pruned, O(D log N)).
  auto diff = db.Diff("inventory", "master", "audit-2026");
  if (!diff.ok()) return 1;
  std::printf("branches differ in %zu entries:\n", diff->keyed.size());
  for (const auto& d : diff->keyed) {
    std::printf("  %s: %s -> %s\n", d.key.c_str(),
                d.left ? d.left->c_str() : "(absent)",
                d.right ? d.right->c_str() : "(absent)");
  }

  // 5. Merge the audit branch back (three-way, conflict-checked).
  auto merged = db.Merge("inventory", "master", "audit-2026");
  if (!merged.ok()) return 1;
  auto master = db.GetMap("inventory");
  if (!master.ok()) return 1;
  std::printf("after merge, doodad = %s\n", (*master->Get("doodad"))->c_str());

  // 6. History is a hash chain; Verify re-derives every hash.
  auto history = db.History("inventory");
  if (!history.ok()) return 1;
  std::printf("history (%zu versions):\n", history->size());
  for (const auto& info : *history) {
    std::printf("  %s  %-8s %s\n", info.uid_base32().substr(0, 12).c_str(),
                info.author.c_str(), info.message.c_str());
  }
  CHECK_OK(db.Verify(*db.Head("inventory")));
  std::printf("tamper-evidence check: OK\n");

  // 7. Storage stats: identical sub-content is stored once.
  auto stats = db.Stat();
  std::printf("chunks=%llu physical=%llu B dedup=%.2fx\n",
              static_cast<unsigned long long>(stats.chunks.chunk_count),
              static_cast<unsigned long long>(stats.chunks.physical_bytes),
              stats.chunks.DedupRatio());
  return 0;
}

// Collaborative analytics scenario (Fig. 1 "Collaborative Analytics" +
// branch-based access control).
//
// Two admins run a multi-tenant pipeline: analysts get write access only to
// their own branches of a shared dataset; an aggregator merges their work
// back into master, relying on three-way merge for disjoint edits and
// conflict detection for overlapping ones.
//
// Build & run:  ./build/examples/collaborative_pipeline
#include <cstdio>

#include "chunk/mem_chunk_store.h"
#include "store/access_control.h"
#include "store/forkbase.h"
#include "util/datagen.h"

using namespace forkbase;

int main() {
  ForkBase db(std::make_shared<MemChunkStore>());
  AccessController acl;
  SecureForkBase secure(&db, &acl);

  // Admins and tenants.
  (void)acl.AddUser("admin-a", /*is_admin=*/true);
  (void)acl.AddUser("admin-b", /*is_admin=*/true);
  (void)acl.AddUser("analyst-x");
  (void)acl.AddUser("analyst-y");

  // Admin A loads the shared dataset.
  CsvGenOptions opts;
  opts.num_rows = 2000;
  CsvDocument doc = GenerateCsv(opts);
  auto table = FTable::FromCsv(db.store(), doc);
  if (!table.ok()) return 1;
  auto v0 = secure.Put("admin-a", "features", Value::OfTable(table->id()),
                       "master", {"admin-a", "shared feature table"});
  if (!v0.ok()) return 1;
  std::printf("admin-a published features@master (%zu rows)\n",
              doc.rows.size());

  // Tenant branches with scoped grants: each analyst can read master and
  // write only their own branch.
  for (const char* user : {"analyst-x", "analyst-y"}) {
    std::string branch = std::string(user) + "-work";
    (void)acl.Grant("admin-a", user, "features", "master", Permission::kRead);
    (void)acl.Grant("admin-a", user, "features", branch, Permission::kWrite);
    (void)acl.Grant("admin-a", user, "features", branch, Permission::kRead);
    if (!secure.Branch(user, "features", branch, "master").ok()) return 1;
  }

  // analyst-x may NOT touch master:
  auto denied = secure.Put("analyst-x", "features", Value::Null(), "master");
  std::printf("analyst-x writing master: %s\n",
              denied.status().ToString().c_str());
  if (!denied.status().IsPermissionDenied()) return 1;

  // Each analyst engineers a different column on their own branch.
  auto edit_column = [&](const std::string& user, size_t column,
                         const std::string& tag) -> bool {
    std::string branch = user + "-work";
    auto v = secure.Get(user, "features", branch);
    if (!v.ok()) return false;
    auto t = FTable::Attach(db.store(), v->root());
    if (!t.ok()) return false;
    // Normalize 200 rows of one column (disjoint columns across users).
    FTable current = *t;
    for (int i = 0; i < 200; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "r%08d", i * 10);
      auto next = current.UpdateCell(key, column, tag + std::to_string(i));
      if (!next.ok()) return false;
      current = *next;
    }
    return secure
        .Put(user, "features", Value::OfTable(current.id()), branch,
             {user, "normalized column " + std::to_string(column)})
        .ok();
  };
  if (!edit_column("analyst-x", 2, "xnorm")) return 1;
  if (!edit_column("analyst-y", 4, "ynorm")) return 1;
  std::printf("analysts committed disjoint column edits on their branches\n");

  // Admin B reviews the diffs, then merges both branches into master.
  for (const char* user : {"analyst-x", "analyst-y"}) {
    std::string branch = std::string(user) + "-work";
    auto diff = secure.Diff("admin-b", "features", "master", branch);
    if (!diff.ok()) return 1;
    std::printf("review %-18s : %zu rows differ from master\n",
                branch.c_str(), diff->rows.size());
    auto merged = secure.Merge("admin-b", "features", "master", branch);
    if (!merged.ok()) {
      std::printf("merge failed: %s\n", merged.status().ToString().c_str());
      return 1;
    }
  }
  // Both analysts touched overlapping ROWS but disjoint COLUMNS — the
  // column-refined table merge reconciles them without conflicts.
  auto final_table = db.GetTable("features");
  if (!final_table.ok()) return 1;
  auto row = final_table->GetRow("r00000050");
  if (!row.ok() || !row->has_value()) return 1;
  std::printf("merged row r00000050: c1=%s c3=%s\n", (**row)[2].c_str(),
              (**row)[4].c_str());

  // A second, conflicting attempt: both edit the SAME cell.
  (void)db.Branch("features", "conflict-a");
  (void)db.Branch("features", "conflict-b");
  for (const char* branch : {"conflict-a", "conflict-b"}) {
    auto t = db.GetTable("features", branch);
    if (!t.ok()) return 1;
    auto edited = t->UpdateCell("r00000100", 3, std::string("from-") + branch);
    if (!edited.ok()) return 1;
    (void)db.Put("features", Value::OfTable(edited->id()), branch);
  }
  auto conflict = db.Merge("features", "conflict-a", "conflict-b");
  std::printf("conflicting merge: %s\n",
              conflict.status().ToString().c_str());
  if (!conflict.status().IsMergeConflict()) return 1;
  // Resolve by policy.
  auto resolved = db.Merge("features", "conflict-a", "conflict-b",
                           MergePolicy::kPreferRight);
  if (!resolved.ok()) return 1;
  std::printf("resolved with kPreferRight -> %s\n",
              (*db.GetTable("features", "conflict-a")
                    ->GetCell("r00000100", 3))
                  ->c_str());
  return 0;
}

// Tamper-evidence audit scenario (§II-D, Fig. 6).
//
// Threat model: the storage provider is malicious; the client keeps only the
// branch-head uids it received from Put. This example stores a ledger,
// records its uid, lets the "provider" silently corrupt a chunk, and shows
// that Verify pinpoints the forgery — including history rewrites.
//
// Build & run:  ./build/examples/tamper_audit
#include <cstdio>

#include "chunk/mem_chunk_store.h"
#include "store/forkbase.h"
#include "util/random.h"

using namespace forkbase;

int main() {
  // The provider-controlled physical storage.
  auto provider = std::make_shared<MemChunkStore>();
  ForkBase db(provider);

  // A client appends ledger entries; it remembers every uid it was given.
  std::vector<Hash256> receipts;
  Rng rng(7);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int block = 0; block < 20; ++block) {
    for (int tx = 0; tx < 50; ++tx) {
      entries.emplace_back(
          "tx-" + std::to_string(block * 50 + tx),
          "amount=" + std::to_string(rng.Uniform(10000)));
    }
    auto uid = db.PutMap("ledger", entries, "master",
                         {"client", "block " + std::to_string(block)});
    if (!uid.ok()) return 1;
    receipts.push_back(*uid);
  }
  std::printf("client committed %zu blocks; head receipt %s\n",
              receipts.size(), receipts.back().ToBase32().c_str());

  // Honest read-back: everything verifies.
  if (!db.Verify(receipts.back()).ok()) return 1;
  std::printf("initial audit: OK (content + full history hash chain)\n");

  // Scenario 1: the provider rewrites one transaction inside a data chunk.
  auto map = db.GetMap("ledger");
  if (!map.ok()) return 1;
  std::vector<Hash256> chunks;
  if (!map->tree().ReachableChunks(&chunks).ok()) return 1;
  Hash256 victim = chunks[chunks.size() / 3];
  provider->TamperForTesting(victim, 20, 0x08);
  Status audit1 = db.Verify(receipts.back());
  std::printf("after silent data edit:    %s\n", audit1.ToString().c_str());
  if (!audit1.IsCorruption()) return 1;
  provider->TamperForTesting(victim, 20, 0x08);  // provider covers tracks

  // Scenario 2: the provider forges HISTORY — rewrites an old FNode to
  // claim a different author for block 5.
  provider->TamperForTesting(receipts[5], 10, 0x40);
  Status audit2 = db.Verify(receipts.back());
  std::printf("after history forgery:     %s\n", audit2.ToString().c_str());
  if (!audit2.IsCorruption()) return 1;
  provider->TamperForTesting(receipts[5], 10, 0x40);

  // Scenario 3: the provider serves a stale-but-valid older version as the
  // head. Content verification alone cannot catch substitution — this is
  // exactly why the client must track head uids (§II-D). The receipt
  // comparison catches it.
  Hash256 served = receipts[receipts.size() - 2];  // provider's claim
  bool is_current_head = db.IsBranchHead("ledger", served);
  std::printf("provider serves an old version as head: client check says "
              "%s\n",
              is_current_head ? "ACCEPTED (BUG!)" : "REJECTED (stale head)");
  if (is_current_head) return 1;

  // Final clean audit of every receipt the client holds.
  int verified = 0;
  for (const auto& receipt : receipts) {
    if (db.Verify(receipt).ok()) ++verified;
  }
  std::printf("final audit: %d/%zu receipts verified clean\n", verified,
              receipts.size());
  return verified == static_cast<int>(receipts.size()) ? 0 : 1;
}

// Experiment E4 — Fig. 6: versioning, validation and tamper evidence.
//
// The demo stamps each Put with a Base32 uid and validates data by
// recomputing the Merkle root against the stored version. We reproduce:
//   (a) the commit chain with per-Put uid stamping (latency distribution),
//   (b) verification throughput vs object size and history length,
//   (c) byte-flip injections in a data chunk, an index chunk, and an
//       ancestor FNode — every one must be detected (the §II-D threat
//       model: malicious storage, client holds branch-head uids).
#include <algorithm>

#include "bench_common.h"
#include "chunk/mem_chunk_store.h"
#include "postree/tree.h"
#include "store/forkbase.h"
#include "util/datagen.h"

namespace forkbase {
namespace bench {
namespace {

void RunCommitChain() {
  PrintHeader("Fig. 6 (E4a): Put latency with uid stamping, 200-commit chain");
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  auto kvs = RandomKvs(10000, 3);
  std::vector<std::pair<std::string, std::string>> pairs(kvs.begin(),
                                                         kvs.end());
  if (!db.PutMap("ledger", pairs).ok()) return;

  Rng rng(4);
  std::vector<double> latencies;
  Hash256 last_uid;
  for (int v = 0; v < 200; ++v) {
    auto map = db.GetMap("ledger");
    if (!map.ok()) return;
    Timer t;
    auto edited = map->Set(kvs[rng.Uniform(kvs.size())].first,
                           "v" + std::to_string(v));
    if (!edited.ok()) return;
    auto uid = db.Put("ledger", Value::OfMap(edited->root()), "master",
                      {"bench", "commit " + std::to_string(v)});
    if (!uid.ok()) return;
    latencies.push_back(t.ElapsedUs());
    last_uid = *uid;
  }
  std::sort(latencies.begin(), latencies.end());
  std::printf("commits: 200 over a 10k-entry map\n");
  std::printf("put latency p50 / p95 / p99: %.0f / %.0f / %.0f us\n",
              latencies[100], latencies[190], latencies[198]);
  std::printf("head uid (Base32, RFC 4648): %s\n",
              last_uid.ToBase32().c_str());
  auto history = db.History("ledger");
  if (history.ok()) {
    std::printf("history length via bases chain: %zu\n", history->size());
  }
}

void RunVerificationThroughput() {
  PrintHeader("Fig. 6 (E4b): verification latency vs object size");
  std::printf("%-12s %14s %16s %14s\n", "rows", "chunks", "verify (ms)",
              "MB verified");
  PrintRule();
  for (size_t rows : {1000u, 4000u, 16000u, 64000u}) {
    auto store = std::make_shared<MemChunkStore>();
    ForkBase db(store);
    CsvGenOptions opts;
    opts.num_rows = rows;
    auto uid = db.PutTableFromCsv("ds", GenerateCsv(opts));
    if (!uid.ok()) return;
    Timer t;
    if (!db.Verify(*uid).ok()) return;
    double ms = t.ElapsedMs();
    auto stats = store->stats();
    std::printf("%-12zu %14llu %16.2f %14.2f\n", rows,
                static_cast<unsigned long long>(stats.chunk_count), ms,
                ToMb(stats.physical_bytes));
  }

  PrintHeader("Fig. 6 (E4b'): verification vs history length");
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  if (!db.Put("k", Value::String("genesis")).ok()) return;
  std::printf("%-12s %16s\n", "history", "verify (us)");
  PrintRule();
  for (int target : {10, 100, 1000}) {
    while (true) {
      auto history = db.History("k", "master", target + 1);
      if (!history.ok()) return;
      if (history->size() >= static_cast<size_t>(target)) break;
      if (!db.Put("k", Value::String("v" + std::to_string(history->size())))
               .ok())
        return;
    }
    auto head = db.Head("k");
    if (!head.ok()) return;
    Timer t;
    if (!db.Verify(*head).ok()) return;
    std::printf("%-12d %16.1f\n", target, t.ElapsedUs());
  }
}

void RunTamperInjection() {
  PrintHeader("Fig. 6 (E4c): byte-flip injection — all must be DETECTED");
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  CsvGenOptions opts;
  opts.num_rows = 5000;
  auto v1 = db.PutTableFromCsv("ds", GenerateCsv(opts), 0, "master",
                               {"alice", "load"});
  if (!v1.ok()) return;
  auto table = db.GetTable("ds");
  if (!table.ok()) return;
  auto t2 = table->UpdateCell("r00002500", 2, "edited");
  if (!t2.ok()) return;
  auto v2 = db.Put("ds", Value::OfTable(t2->id()), "master", {"bob", "edit"});
  if (!v2.ok()) return;

  // Classify reachable chunks of the head version's row tree.
  auto head_table = db.GetTable("ds");
  if (!head_table.ok()) return;
  std::vector<Hash256> chunks;
  if (!head_table->rows().tree().ReachableChunks(&chunks).ok()) return;
  Hash256 leaf_chunk, index_chunk;
  bool have_leaf = false, have_index = false;
  for (const auto& id : chunks) {
    auto c = store->Get(id);
    if (!c.ok()) continue;
    if (c->type() == ChunkType::kMeta && !have_index) {
      index_chunk = id;
      have_index = true;
    } else if (c->type() == ChunkType::kMapLeaf && !have_leaf) {
      leaf_chunk = id;
      have_leaf = true;
    }
  }

  struct Case {
    const char* name;
    Hash256 target;
  };
  std::vector<Case> cases;
  if (have_leaf) cases.push_back({"data chunk (map leaf)", leaf_chunk});
  if (have_index) cases.push_back({"index chunk (Merkle interior)", index_chunk});
  cases.push_back({"ancestor FNode (history forgery)", *v1});

  std::printf("%-36s %-10s %s\n", "injection target", "verify", "result");
  PrintRule();
  int detected = 0;
  for (const auto& c : cases) {
    // Verify clean, tamper, verify again, restore by re-flipping.
    if (!db.Verify(*v2).ok()) return;
    store->TamperForTesting(c.target, 8, 0x20);
    Status verify = db.Verify(*v2);
    bool caught = verify.IsCorruption();
    detected += caught;
    std::printf("%-36s %-10s %s\n", c.name, caught ? "FAILED" : "passed",
                caught ? "DETECTED" : "*** MISSED ***");
    store->TamperForTesting(c.target, 8, 0x20);  // undo
  }
  std::printf("detected %d / %zu injections "
              "(paper claim: any tampering is detectable from the uid)\n",
              detected, cases.size());
}

}  // namespace
}  // namespace bench
}  // namespace forkbase

int main() {
  forkbase::bench::RunCommitChain();
  forkbase::bench::RunVerificationThroughput();
  forkbase::bench::RunTamperInjection();
  return 0;
}

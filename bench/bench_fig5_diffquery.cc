// Experiment E3 — Fig. 5: fast differential query.
//
// The demo shows Diff between the master and VendorX branches of a dataset,
// with differences surfaced at row and column scope. We reproduce the flow
// and quantify the §II-B complexity claim: the hash-pruned Diff runs in
// O(D log N) (D = differing entries) versus the element-wise baseline's
// O(N). Expected shape: the pruned diff is roughly flat in N for fixed D and
// beats the baseline by growing factors as N/D rises; the element-wise scan
// wins only when nearly everything differs.
#include "bench_common.h"
#include "chunk/mem_chunk_store.h"
#include "postree/diff.h"
#include "store/forkbase.h"
#include "util/datagen.h"

namespace forkbase {
namespace bench {
namespace {

void RunDemoFlow() {
  PrintHeader("Fig. 5 (E3): differential query between master and VendorX");
  ForkBase db(std::make_shared<MemChunkStore>());
  CsvGenOptions opts;
  opts.num_rows = 20000;
  CsvDocument doc = GenerateCsv(opts);
  if (!db.PutTableFromCsv("Dataset-1", doc).ok()) return;
  if (!db.Branch("Dataset-1", "VendorX").ok()) return;
  auto table = db.GetTable("Dataset-1", "VendorX");
  if (!table.ok()) return;
  auto edited = table->UpdateCell("r00010000", 2, "vendor-correction");
  if (!edited.ok()) return;
  if (!db.Put("Dataset-1", Value::OfTable(edited->id()), "VendorX").ok())
    return;

  Timer t;
  auto diff = db.Diff("Dataset-1", "master", "VendorX");
  double us = t.ElapsedUs();
  if (!diff.ok()) return;
  std::printf("rows: %zu; differing rows found: %zu (row %s, columns:",
              doc.rows.size(), diff->rows.size(), diff->rows[0].key.c_str());
  for (size_t c : diff->rows[0].changed_columns) std::printf(" %zu", c);
  std::printf(")\n");
  std::printf("diff latency: %.1f us; nodes loaded: %llu; subtrees pruned: "
              "%llu\n",
              us, static_cast<unsigned long long>(diff->metrics.nodes_loaded),
              static_cast<unsigned long long>(diff->metrics.nodes_pruned));
}

void RunSweep() {
  PrintHeader("Fig. 5 sweep: POS-Tree diff vs element-wise diff");
  std::printf("%-9s %-7s %15s %15s %9s %12s\n", "N", "D", "pruned (us)",
              "elemwise (us)", "speedup", "nodes loaded");
  PrintRule();
  for (size_t n : {1024u, 8192u, 65536u, 262144u}) {
    auto store = std::make_shared<MemChunkStore>();
    auto kvs = RandomKvs(n, /*seed=*/n);
    auto info = PosTree::BuildKeyed(store.get(), ChunkType::kMapLeaf, kvs);
    if (!info.ok()) return;
    PosTree a(store.get(), ChunkType::kMapLeaf, info->root);
    for (size_t d : {1u, 16u, 256u, 4096u}) {
      if (d > n / 2) continue;
      Rng rng(d * 31 + n);
      std::vector<KeyedOp> ops;
      for (size_t i = 0; i < d; ++i) {
        ops.push_back(
            KeyedOp{kvs[rng.Uniform(kvs.size())].first, rng.NextString(12)});
      }
      auto edited = a.ApplyKeyedOps(ops);
      if (!edited.ok()) return;
      PosTree b(store.get(), ChunkType::kMapLeaf, edited->root);

      // Warm once, then time several repetitions.
      DiffMetrics metrics;
      (void)DiffKeyed(a, b, &metrics);
      const int reps = n >= 65536 ? 3 : 10;
      Timer tp;
      for (int r = 0; r < reps; ++r) {
        DiffMetrics m;
        auto result = DiffKeyed(a, b, &m);
        if (!result.ok()) return;
      }
      double pruned_us = tp.ElapsedUs() / reps;
      Timer te;
      for (int r = 0; r < reps; ++r) {
        auto result = DiffKeyedElementwise(a, b);
        if (!result.ok()) return;
      }
      double elem_us = te.ElapsedUs() / reps;
      std::printf("%-9zu %-7zu %15.1f %15.1f %8.1fx %12llu\n", n, d,
                  pruned_us, elem_us, elem_us / pruned_us,
                  static_cast<unsigned long long>(metrics.nodes_loaded));
    }
  }
  std::printf(
      "expected shape: for fixed D the pruned diff stays near-flat in N\n"
      "while the element-wise cost grows linearly; speedup ~ N/D.\n");
}

void RunBranchCount() {
  PrintHeader("Fig. 5 companion: diff cost across many branches");
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  auto kvs = RandomKvs(50000, 7);
  std::vector<std::pair<std::string, std::string>> as_pairs(kvs.begin(),
                                                            kvs.end());
  if (!db.PutMap("obj", as_pairs).ok()) return;
  // 8 branches, each with a private edit.
  for (int i = 0; i < 8; ++i) {
    std::string branch = "branch-" + std::to_string(i);
    if (!db.Branch("obj", branch).ok()) return;
    auto map = db.GetMap("obj", branch);
    if (!map.ok()) return;
    auto edited = map->Set(kvs[i * 6000].first, "edit-" + branch);
    if (!edited.ok()) return;
    if (!db.Put("obj", Value::OfMap(edited->root()), branch).ok()) return;
  }
  std::printf("%-22s %12s %12s\n", "pair", "diff (us)", "rows differ");
  PrintRule();
  for (int i = 1; i < 8; ++i) {
    Timer t;
    auto diff = db.Diff("obj", "branch-0", "branch-" + std::to_string(i));
    double us = t.ElapsedUs();
    if (!diff.ok()) return;
    std::printf("branch-0 vs branch-%-3d %12.1f %12zu\n", i, us,
                diff->keyed.size());
  }
}

}  // namespace
}  // namespace bench
}  // namespace forkbase

int main() {
  forkbase::bench::RunDemoFlow();
  forkbase::bench::RunSweep();
  forkbase::bench::RunBranchCount();
  return 0;
}

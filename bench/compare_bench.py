#!/usr/bin/env python3
"""Bench regression gate for bench_micro_ops JSON output.

Compares a fresh google-benchmark JSON run against the checked-in
bench/baseline.json in two ways:

1. RATIO GATE (fails CI): for each tracked pair below, the speedup ratio
   faster-path / slower-path (items_per_second) is computed in BOTH runs
   from their own same-machine measurements. The new ratio must not fall
   more than --threshold percent below the baseline ratio, and must stay
   above the pair's hard floor where one is set (the PR acceptance
   criteria: async scans >= 1.5x sync on a latency-bound store, grouped
   4-thread commits >= 1x the 4 independent scalar commits). Ratios are
   machine-independent, so this gate is meaningful on any runner.

2. ABSOLUTE DRIFT (warns by default, fails with --strict): per-benchmark
   items_per_second against the baseline. Absolute numbers move with the
   runner's hardware, so this is advisory unless you know both runs came
   from comparable machines.

Note on the checked-in baseline: it is recorded from a Release
(-O3 -DNDEBUG) build of this repo; the JSON's "library_build_type":
"debug" describes the distro's libbenchmark package, not the code under
test. The recording host may still differ from the CI runner (core
count, disk), which is why only same-run ratios gate hard, pairs whose
ratio depends on core count are floor-only, and absolute numbers warn
unless --strict. Regenerate with:
  ./build/bench_micro_ops --benchmark_min_time=0.2 \
      --benchmark_format=json --benchmark_out=bench/baseline.json

Usage: compare_bench.py BASELINE.json NEW.json [--threshold 25] [--strict]
"""

import argparse
import json
import sys

# (faster path, slower path, hard floor on the ratio or None,
#  compare against the baseline ratio?)
# Pairs whose ratio depends on the host's core count / sync cost (thread
# scaling, fsync amortization) keep only their machine-independent floor;
# comparing their baseline ratio across different runners would be noise.
TRACKED_PAIRS = [
    ("BM_FileStorePutBatched/64", "BM_FileStorePutScalar/64", 1.5, True),
    ("BM_FileStorePutBatched/256", "BM_FileStorePutScalar/256", 1.5, True),
    # 1024-chunk batches are write-bandwidth-bound; the advantage varies
    # with the disk, so this pair is regression-tracked without a floor.
    ("BM_FileStorePutBatched/1024", "BM_FileStorePutScalar/1024", None, True),
    ("BM_FileStoreGetBatched/64", "BM_FileStoreGetScalar/64", 1.5, True),
    ("BM_FileStoreGetBatched/256", "BM_FileStoreGetScalar/256", 1.5, True),
    # Tentpole criteria of the async I/O pipeline PR. The slow-device scan
    # is dominated by the simulated latency, so its ratio travels well; the
    # commit pair's ratio moves with cores and fsync cost, floor only.
    ("BM_MapScanSlowDeviceAsync/real_time",
     "BM_MapScanSlowDeviceSync/real_time", 1.5, True),
    # Tentpole criterion of the tiered-store PR: scanning a tree resident
    # only on a slow cold tier, the prefetching tiered scan must beat the
    # synchronous one. Latency-dominated like the SlowDevice pair, so the
    # ratio is portable across runners.
    ("BM_MapScanTieredColdAsync/real_time",
     "BM_MapScanTieredColdSync/real_time", 1.5, True),
    # Bounded-tier criterion: scanning a working set 2x the hot budget —
    # every chunk promoted, evicted and its segment rewritten each cycle —
    # must cost at most ~2x the plain synchronous cold scan. The evicting
    # side is CPU-heavy (promotion hashing, tombstones, rewrites) while the
    # sync side is latency-bound, so the ratio moves with the runner's CPU:
    # floor only, no baseline comparison.
    ("BM_MapScanTieredEvicting/real_time",
     "BM_MapScanTieredColdSync/real_time", 0.5, False),
    ("CommitBench/FNodeCommit/1/real_time/threads:4",
     "CommitBench/FNodeCommit/0/real_time/threads:4", 1.0, False),
    # Sync-subsystem criterion: after negotiation a steady-state push
    # exports only the delta past the receiver's frontier, which must stay
    # well ahead of re-exporting the head's whole closure. Both sides are
    # CPU-bound closure walks over the same in-memory corpus, so the ratio
    # travels across runners.
    ("BM_SyncPushDelta", "BM_SyncPushFull", 2.0, True),
    # Parallel-maintenance criterion of the in-place GC PR: the same
    # compaction backlog (~37 segment rewrites, page cache dropped,
    # pre-truncate fsync plus a simulated 500us device sync — the
    # SlowDevice methodology, since rewrites block on device waits that a
    # 1-thread pool serializes) must run >= 1.5x faster on a 4-thread
    # maintenance pool. The serialized CPU share still moves with the
    # runner's core count, so floor only, no baseline comparison.
    ("BM_CompactParallel/real_time", "BM_CompactSerial/real_time", 1.5,
     False),
    # Encoded-storage criteria. The corpus pair is a deterministic size
    # measurement (manual time pinned at 1s, items = physical bytes), so
    # the ratio is exact and fully portable: a 64-commit versioned corpus
    # stored compressed+delta must be <= 0.6x its raw footprint
    # (raw/encoded >= 1.67). The scan pair bounds the read-side tax of
    # compression on a cold scan (batched GetMany through the 150us
    # SlowChunkStore device model): the decompression is CPU work riding a
    # latency-bound sweep, and how much of it hides in the device wait
    # moves with the runner's CPU, so floor only — the compressed scan must
    # hold >= 0.8x raw throughput.
    ("BM_VersionedCorpusBytesRaw/manual_time",
     "BM_VersionedCorpusBytesEncoded/manual_time", 1.67, True),
    ("BM_ScanCompressedStore/real_time", "BM_ScanRawStore/real_time",
     0.8, False),
    # Hardware-hashing criteria. All three are floor-only: the ratios hinge
    # on whether the runner's CPU has SHA extensions, which the recording
    # host can't speak for. The chunker pair is pure portable CPU work
    # (same ISA on both sides) and must hold the 1.3x component floor; the
    # SHA and ingest pairs degrade to ~1.0x on a runner without SHA-NI/CE
    # (dispatch falls back to the very scalar core it is compared against),
    # so their floors only assert "hardware dispatch never loses". On a
    # SHA-capable host they run ~5x and ~2.5x respectively.
    ("BM_ChunkerThroughputBlockwise", "BM_ChunkerThroughputOld", 1.3, False),
    ("BM_Sha256ThroughputDispatched", "BM_Sha256ThroughputScalar", 0.95,
     False),
    ("BM_IngestBandwidth", "BM_IngestBandwidthScalarSha", 0.95, False),
]


def load_rates(path):
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # Throughput benches report one or the other; ratios are identical
        # either way.
        rate = bench.get("items_per_second") or bench.get("bytes_per_second")
        if rate:
            rates[bench["name"]] = rate
    return rates


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="max tolerated ratio regression, percent")
    parser.add_argument("--strict", action="store_true",
                        help="fail on absolute per-benchmark drift too")
    args = parser.parse_args()

    base = load_rates(args.baseline)
    new = load_rates(args.fresh)
    tolerance = 1.0 - args.threshold / 100.0
    failures = []
    warnings = []

    print(f"== ratio gate (threshold {args.threshold:.0f}%) ==")
    for fast, slow, floor, vs_baseline in TRACKED_PAIRS:
        if fast not in new or slow not in new:
            failures.append(f"pair missing from new run: {fast} / {slow}")
            continue
        new_ratio = new[fast] / new[slow]
        line = f"{fast} / {slow}: {new_ratio:.2f}x"
        if not vs_baseline:
            line += " (floor-only pair)"
        elif fast in base and slow in base:
            base_ratio = base[fast] / base[slow]
            line += f" (baseline {base_ratio:.2f}x)"
            if new_ratio < base_ratio * tolerance:
                failures.append(
                    f"ratio regression: {fast}/{slow} fell to {new_ratio:.2f}x "
                    f"from {base_ratio:.2f}x (>{args.threshold:.0f}%)")
        else:
            warnings.append(f"pair not in baseline: {fast} / {slow}")
        if floor is not None and new_ratio < floor:
            failures.append(
                f"floor violated: {fast}/{slow} = {new_ratio:.2f}x "
                f"< required {floor:.2f}x")
        print("  " + line)

    print("== absolute drift ==")
    for name in sorted(set(base) & set(new)):
        drift = new[name] / base[name]
        if drift < tolerance:
            msg = (f"absolute regression: {name} at {drift * 100:.0f}% "
                   f"of baseline throughput")
            (failures if args.strict else warnings).append(msg)
        print(f"  {name}: {drift * 100:.0f}% of baseline")

    for w in warnings:
        print(f"WARNING: {w}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("OK: all tracked ratios within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Experiment E1 — Table I: comparison with related data-versioning systems.
//
// The paper's Table I is qualitative; we reproduce it quantitatively on one
// workload (10k-row table, 50 single-cell versions, 3 branches) by running
// ForkBase against two in-repo baselines representing the table's rows:
//   * CopyStore   — "unstructured, mutable / key-value / none / ad-hoc"
//                   (RStore-like: full snapshot per version)
//   * DeltaStore  — "structured (table), mutable / table oriented / none /
//                   ad-hoc" (DataHub/Decibel/OrpheusDB-like delta chains)
// Measured columns: physical storage, dedup ratio, read cost of an old
// version, branch-creation cost, and tamper evidence (demonstrated, not
// asserted). Expected shape (matching the paper's table): ForkBase is the
// only system with page-level dedup AND tamper evidence AND Git-like
// branching, at storage near DeltaStore and reads near CopyStore.
#include "baselines/copy_store.h"
#include "baselines/delta_store.h"
#include "bench_common.h"
#include "chunk/mem_chunk_store.h"
#include "store/forkbase.h"
#include "util/datagen.h"

namespace forkbase {
namespace bench {
namespace {

constexpr int kVersions = 50;
constexpr size_t kRows = 10000;

struct Row {
  std::string system;
  double storage_mb = 0;
  double dedup_ratio = 1.0;
  double old_read_ms = 0;
  double branch_us = 0;
  bool tamper_evident = false;
  std::string branching;
};

DeltaStore::RowMap RowsOf(const CsvDocument& doc) {
  DeltaStore::RowMap rows;
  for (const auto& r : doc.rows) {
    std::string payload;
    for (const auto& c : r) payload += c + "\x1f";
    rows[r[0]] = payload;
  }
  return rows;
}

void Report(const std::vector<Row>& rows) {
  PrintRule();
  std::printf("%-12s %12s %8s %14s %12s %8s %10s\n", "system",
              "storage(MB)", "dedup", "old-read(ms)", "branch(us)", "tamper",
              "branching");
  PrintRule();
  for (const auto& r : rows) {
    std::printf("%-12s %12.2f %7.1fx %14.2f %12.1f %8s %10s\n",
                r.system.c_str(), r.storage_mb, r.dedup_ratio, r.old_read_ms,
                r.branch_us, r.tamper_evident ? "yes" : "none",
                r.branching.c_str());
  }
  PrintRule();
  std::printf(
      "paper Table I: ForkBase = page-level dedup + Merkle-root tamper\n"
      "evidence + Git-like branching; related systems offer at most\n"
      "table-oriented dedup with ad-hoc branching and no tamper evidence.\n");
}

void Run() {
  PrintHeader("Table I (E1): versioning-system comparison, 10k rows x 50 "
              "versions x 3 branches");
  CsvGenOptions opts;
  opts.num_rows = kRows;
  CsvDocument doc = GenerateCsv(opts);
  Rng rng(5);

  std::vector<Row> report;

  // ---------------------------------------------------------- ForkBase --
  {
    auto store = std::make_shared<MemChunkStore>();
    ForkBase db(store);
    if (!db.PutTableFromCsv("ds", doc).ok()) return;
    Hash256 first_head = *db.Head("ds");
    Rng r(6);
    for (int v = 0; v < kVersions; ++v) {
      auto table = db.GetTable("ds");
      if (!table.ok()) return;
      char key[16];
      std::snprintf(key, sizeof(key), "r%08d",
                    static_cast<int>(r.Uniform(kRows)));
      auto edited = table->UpdateCell(key, 1 + r.Uniform(6),
                                      "v" + std::to_string(v));
      if (!edited.ok()) return;
      if (!db.Put("ds", Value::OfTable(edited->id())).ok()) return;
    }
    Timer tb;
    if (!db.Branch("ds", "b1").ok()) return;
    if (!db.Branch("ds", "b2").ok()) return;
    double branch_us = tb.ElapsedUs() / 2;

    Timer tr;
    auto old_value = db.GetVersion(first_head);
    if (!old_value.ok()) return;
    auto old_table = FTable::Attach(store.get(), old_value->root());
    if (!old_table.ok()) return;
    uint64_t rows_read = 0;
    if (!old_table
             ->Scan([&rows_read](Slice, const std::vector<std::string>&) {
               ++rows_read;
               return Status::OK();
             })
             .ok())
      return;
    double old_read_ms = tr.ElapsedMs();

    // Tamper evidence: flip a byte, expect detection.
    std::vector<Hash256> chunks;
    auto head_table = db.GetTable("ds");
    if (!head_table.ok()) return;
    if (!head_table->rows().tree().ReachableChunks(&chunks).ok()) return;
    store->TamperForTesting(chunks[chunks.size() / 2], 3, 0x11);
    bool detected = db.Verify(*db.Head("ds")).IsCorruption();
    store->TamperForTesting(chunks[chunks.size() / 2], 3, 0x11);  // undo

    auto stats = store->stats();
    report.push_back(Row{"forkbase", ToMb(stats.physical_bytes),
                         stats.DedupRatio(), old_read_ms, branch_us, detected,
                         "Git-like"});
  }

  // --------------------------------------------------------- CopyStore --
  {
    CopyStore store;
    CsvDocument current = doc;
    auto v1 = store.Put("ds", "master", WriteCsv(current));
    Rng r(6);
    for (int v = 0; v < kVersions; ++v) {
      size_t row = r.Uniform(kRows);
      size_t col = 1 + r.Uniform(6);
      current.rows[row][col] = "v" + std::to_string(v);
      store.Put("ds", "master", WriteCsv(current));
    }
    Timer tb;
    (void)store.Branch("ds", "b1", "master");
    (void)store.Branch("ds", "b2", "master");
    double branch_us = tb.ElapsedUs() / 2;
    Timer tr;
    auto old_payload = store.GetVersion(v1);
    if (!old_payload.ok()) return;
    auto parsed = ParseCsv(*old_payload);
    if (!parsed.ok()) return;
    double old_read_ms = tr.ElapsedMs();
    report.push_back(Row{"copy", ToMb(store.stats().physical_bytes), 1.0,
                         old_read_ms, branch_us, false, "ad-hoc"});
  }

  // -------------------------------------------------------- DeltaStore --
  {
    DeltaStore store(32);
    CsvDocument current = doc;
    auto v1 = store.Put("ds", "master", RowsOf(current));
    if (!v1.ok()) return;
    Rng r(6);
    for (int v = 0; v < kVersions; ++v) {
      size_t row = r.Uniform(kRows);
      size_t col = 1 + r.Uniform(6);
      current.rows[row][col] = "v" + std::to_string(v);
      (void)store.Put("ds", "master", RowsOf(current));
    }
    Timer tb;
    (void)store.Branch("ds", "b1", "master");
    (void)store.Branch("ds", "b2", "master");
    double branch_us = tb.ElapsedUs() / 2;
    Timer tr;
    auto old_rows = store.GetVersion(*v1);
    if (!old_rows.ok()) return;
    double old_read_ms = tr.ElapsedMs();
    // Dedup ratio analogue: logical bytes (all versions materialized) over
    // physical (snapshots + deltas).
    double logical = static_cast<double>(kVersions + 1) *
                     static_cast<double>(WriteCsv(doc).size());
    report.push_back(Row{"delta", ToMb(store.stats().physical_bytes),
                         logical / static_cast<double>(
                                       store.stats().physical_bytes),
                         old_read_ms, branch_us, false, "ad-hoc"});
  }

  Report(report);
  (void)rng;
}

}  // namespace
}  // namespace bench
}  // namespace forkbase

int main() {
  forkbase::bench::Run();
  return 0;
}

// A4 — micro-benchmarks of core primitives and operations, on
// google-benchmark. Covers: SHA-256 and rolling-hash throughput, POS-Tree
// build / lookup / commit / scan / diff, blob read, ForkBase Put/Get, and
// batched vs. scalar chunk-store I/O (the baseline for the sharded batch
// subsystem).
#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <mutex>
#include <thread>

#include "bench_common.h"
#include "chunk/file_chunk_store.h"
#include "chunk/mem_chunk_store.h"
#include "chunk/remote_chunk_store.h"
#include "chunk/tiered_chunk_store.h"
#include "postree/builder.h"
#include "postree/diff.h"
#include "postree/splitter.h"
#include "store/bundle.h"
#include "store/forkbase.h"
#include "store/gc.h"
#include "util/rolling_hash.h"
#include "util/sha256.h"
#include "util/worker_pool.h"

namespace forkbase {
namespace bench {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::string data = Rng(1).NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(256)->Arg(4096)->Arg(65536);

void BM_RollingHash(benchmark::State& state) {
  std::string data = Rng(2).NextBytes(1 << 20);
  RollingHash h(48, 12);
  for (auto _ : state) {
    uint64_t fired = 0;
    for (char c : data) fired += h.Roll(static_cast<uint8_t>(c));
    benchmark::DoNotOptimize(fired);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_RollingHash);

// ---- hardware hashing & block-wise chunking (docs/hashing.md) ----
//
// The Scalar/Dispatched pair measures the SHA core swap in isolation; the
// ChunkerOld/Blockwise pair measures the splitter rewrite in isolation (Old
// reproduces the retired per-byte AddByte loop on the unchanged Roll());
// BM_IngestBandwidth is the end-to-end blob ingest both feed into.

void BM_Sha256ThroughputScalar(benchmark::State& state) {
  std::string data = Rng(3).NextBytes(1 << 20);
  for (auto _ : state) {
    Sha256Hasher h(Sha256Backend::kScalar);
    h.Update(data);
    benchmark::DoNotOptimize(h.Finish());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Sha256ThroughputScalar);

void BM_Sha256ThroughputDispatched(benchmark::State& state) {
  std::string data = Rng(3).NextBytes(1 << 20);
  state.SetLabel(ActiveSha256BackendName());
  for (auto _ : state) {
    Sha256Hasher h;  // whatever cpu_features resolved for this host
    h.Update(data);
    benchmark::DoNotOptimize(h.Finish());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Sha256ThroughputDispatched);

void BM_HashManyBatched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<std::string> bufs;
  bufs.reserve(n);
  int64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    bufs.push_back(rng.NextBytes(4096));
    total += 4096;
  }
  std::vector<Slice> spans(bufs.begin(), bufs.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Many(spans, SharedHashPool()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * total);
}
BENCHMARK(BM_HashManyBatched)->Arg(64)->Arg(512);

void BM_ChunkerThroughputOld(benchmark::State& state) {
  std::string data = Rng(5).NextBytes(8 << 20);
  const SplitConfig cfg = SplitConfig::Blob();
  for (auto _ : state) {
    // The retired formulation: one Roll per byte, bounds checked per byte.
    RollingHash roller(cfg.window, cfg.q_bits);
    size_t node_bytes = 0;
    uint64_t cuts = 0;
    for (char c : data) {
      const bool pattern = roller.Roll(static_cast<uint8_t>(c));
      ++node_bytes;
      if (node_bytes >= cfg.max_bytes ||
          (pattern && node_bytes >= cfg.min_bytes)) {
        ++cuts;
        node_bytes = 0;
        roller.Reset();
      }
    }
    benchmark::DoNotOptimize(cuts);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_ChunkerThroughputOld);

void BM_ChunkerThroughputBlockwise(benchmark::State& state) {
  std::string data = Rng(5).NextBytes(8 << 20);
  for (auto _ : state) {
    NodeSplitter splitter(SplitConfig::Blob());
    uint64_t cuts = 0;
    const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
    size_t remaining = data.size();
    while (remaining > 0) {
      bool cut = false;
      const size_t took = splitter.Feed(p, remaining, &cut);
      p += took;
      remaining -= took;
      if (cut) {
        ++cuts;
        splitter.ResetNode();
      }
    }
    benchmark::DoNotOptimize(cuts);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_ChunkerThroughputBlockwise);

int64_t IngestOnce(const std::string& data) {
  MemChunkStore store;
  TreeBuilder builder(&store, ChunkType::kBlobLeaf, TreeConfig::ForBlob());
  if (!builder.AddBytes(Slice(data)).ok()) return 0;
  auto info = builder.Finish();
  return info.ok() ? static_cast<int64_t>(info->nodes_written) : 0;
}

void BM_IngestBandwidth(benchmark::State& state) {
  std::string data = Rng(6).NextBytes(8 << 20);
  state.SetLabel(ActiveSha256BackendName());
  for (auto _ : state) {
    benchmark::DoNotOptimize(IngestOnce(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_IngestBandwidth);

void BM_IngestBandwidthScalarSha(benchmark::State& state) {
  std::string data = Rng(6).NextBytes(8 << 20);
  const Sha256Backend prev =
      SetSha256BackendForTesting(Sha256Backend::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IngestOnce(data));
  }
  SetSha256BackendForTesting(prev);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_IngestBandwidthScalarSha);

void BM_MapBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto kvs = RandomKvs(n, n);
  for (auto _ : state) {
    MemChunkStore store;
    auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
    benchmark::DoNotOptimize(info.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MapBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MapLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MemChunkStore store;
  auto kvs = RandomKvs(n, n);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  Rng rng(7);
  for (auto _ : state) {
    auto v = tree.Lookup(kvs[rng.Uniform(kvs.size())].first);
    benchmark::DoNotOptimize(v.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MapLookup)->Arg(1000)->Arg(100000);

void BM_MapCommit(benchmark::State& state) {
  // One-key functional update (the write path of every Put).
  const size_t n = static_cast<size_t>(state.range(0));
  MemChunkStore store;
  auto kvs = RandomKvs(n, n);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  Rng rng(8);
  int i = 0;
  for (auto _ : state) {
    auto updated = tree.ApplyKeyedOps(
        {KeyedOp{kvs[rng.Uniform(kvs.size())].first,
                 "v" + std::to_string(i++)}});
    benchmark::DoNotOptimize(updated.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MapCommit)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MapScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MemChunkStore store;
  auto kvs = RandomKvs(n, n);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  for (auto _ : state) {
    uint64_t count = 0;
    (void)tree.Scan([&count](const EntryView&) {
      ++count;
      return Status::OK();
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MapScan)->Arg(10000)->Arg(100000);

void BM_Diff(benchmark::State& state) {
  const size_t n = 100000;
  const size_t d = static_cast<size_t>(state.range(0));
  MemChunkStore store;
  auto kvs = RandomKvs(n, 9);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  PosTree a(&store, ChunkType::kMapLeaf, info->root);
  Rng rng(10);
  std::vector<KeyedOp> ops;
  for (size_t i = 0; i < d; ++i) {
    ops.push_back(
        KeyedOp{kvs[rng.Uniform(kvs.size())].first, rng.NextString(8)});
  }
  auto edited = a.ApplyKeyedOps(ops);
  PosTree b(&store, ChunkType::kMapLeaf, edited->root);
  for (auto _ : state) {
    auto deltas = DiffKeyed(a, b);
    benchmark::DoNotOptimize(deltas.ok());
  }
}
BENCHMARK(BM_Diff)->Arg(1)->Arg(64)->Arg(1024);

void BM_BlobBuild(benchmark::State& state) {
  std::string data = Rng(11).NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    MemChunkStore store;
    auto info = PosTree::BuildBlob(&store, data);
    benchmark::DoNotOptimize(info.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BlobBuild)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

void BM_BlobRead(benchmark::State& state) {
  MemChunkStore store;
  std::string data = Rng(12).NextBytes(8 << 20);
  auto info = PosTree::BuildBlob(&store, data);
  PosTree tree(&store, ChunkType::kBlobLeaf, info->root,
               TreeConfig::ForBlob());
  Rng rng(13);
  std::string out;
  for (auto _ : state) {
    uint64_t offset = rng.Uniform((8 << 20) - 65536);
    (void)tree.ReadBytes(offset, 65536, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_BlobRead);

void BM_ForkBasePutGetString(benchmark::State& state) {
  ForkBase db(std::make_shared<MemChunkStore>());
  Rng rng(14);
  int i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(i % 64);
    (void)db.Put(key, Value::String("value-" + std::to_string(i)));
    auto v = db.Get(key);
    benchmark::DoNotOptimize(v.ok());
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ForkBasePutGetString);

// ---- batched vs. scalar chunk-store I/O ----------------------------------
//
// The pairs below are the throughput baseline for FileChunkStore's batch
// subsystem: scalar Put pays one record append + fflush per chunk, PutMany
// one per batch; scalar Get opens its segment per call, GetMany opens each
// touched segment once per batch. Chunk payloads are small (256 B) so the
// per-call overhead, not the payload copy, dominates — the regime every
// POS-Tree node write/read lives in.

constexpr size_t kIoChunkBytes = 256;

// Fresh unique chunks, pre-hashed so the SHA cost stays out of the timed
// region for both sides of each comparison.
std::vector<Chunk> MakeUniqueChunks(size_t n, uint64_t* counter) {
  std::vector<Chunk> chunks;
  chunks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string payload = "unique-" + std::to_string((*counter)++);
    payload.resize(kIoChunkBytes, 'x');
    chunks.push_back(Chunk::Make(ChunkType::kCell, payload));
    chunks.back().hash();
  }
  return chunks;
}

class ScopedStoreDir {
 public:
  explicit ScopedStoreDir(const std::string& tag)
      : dir_(std::filesystem::temp_directory_path() /
             ("fb_bench_" + tag + std::to_string(::getpid()))) {
    std::filesystem::remove_all(dir_);
  }
  ~ScopedStoreDir() { std::filesystem::remove_all(dir_); }
  std::string path() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

void BM_FileStorePutScalar(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ScopedStoreDir dir("put_scalar");
  auto store = FileChunkStore::Open(dir.path());
  uint64_t counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto chunks = MakeUniqueChunks(batch, &counter);
    state.ResumeTiming();
    for (const auto& c : chunks) {
      benchmark::DoNotOptimize((*store)->Put(c).ok());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch * kIoChunkBytes));
}
BENCHMARK(BM_FileStorePutScalar)->Arg(64)->Arg(256)->Arg(1024);

void BM_FileStorePutBatched(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ScopedStoreDir dir("put_batched");
  auto store = FileChunkStore::Open(dir.path());
  uint64_t counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto chunks = MakeUniqueChunks(batch, &counter);
    state.ResumeTiming();
    benchmark::DoNotOptimize((*store)->PutMany(chunks).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch * kIoChunkBytes));
}
BENCHMARK(BM_FileStorePutBatched)->Arg(64)->Arg(256)->Arg(1024);

void BM_FileStoreGetScalar(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ScopedStoreDir dir("get_scalar");
  auto store = FileChunkStore::Open(dir.path());
  uint64_t counter = 0;
  auto chunks = MakeUniqueChunks(4096, &counter);
  (void)(*store)->PutMany(chunks);
  Rng rng(21);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Hash256> ids;
    ids.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      ids.push_back(chunks[rng.Uniform(chunks.size())].hash());
    }
    state.ResumeTiming();
    for (const auto& id : ids) {
      benchmark::DoNotOptimize((*store)->Get(id).ok());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_FileStoreGetScalar)->Arg(64)->Arg(256);

void BM_FileStoreGetBatched(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ScopedStoreDir dir("get_batched");
  auto store = FileChunkStore::Open(dir.path());
  uint64_t counter = 0;
  auto chunks = MakeUniqueChunks(4096, &counter);
  (void)(*store)->PutMany(chunks);
  Rng rng(22);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Hash256> ids;
    ids.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      ids.push_back(chunks[rng.Uniform(chunks.size())].hash());
    }
    state.ResumeTiming();
    auto results = (*store)->GetMany(ids);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_FileStoreGetBatched)->Arg(64)->Arg(256);

// ---- async prefetch: double-buffered scans ------------------------------
//
// The scan pipeline's win is latency hiding: while the consumer parses
// window N, the store reads window N+1. The File pair measures the real
// file store (page-cache-warm reads, so the hidden latency is small); the
// SlowDevice pair adds a fixed per-batch device latency (seek/network
// class) on top of the file store, the regime the prefetcher exists for.

/// Fixed per-read latency on top of a real store. GetManyAsync pays the
/// same latency, but on a background worker — exactly what a device with
/// queue depth > 1 offers — so a double-buffered consumer can hide it.
class SlowChunkStore : public ChunkStore {
 public:
  /// `workers` models the device's queue depth: that many batch reads can
  /// be "in the device" concurrently. 0 = synchronous store.
  SlowChunkStore(std::shared_ptr<ChunkStore> base, unsigned latency_us,
                 size_t workers)
      : base_(std::move(base)), latency_us_(latency_us), pool_(workers) {}

  StatusOr<Chunk> Get(const Hash256& id) const override {
    Delay();
    return base_->Get(id);
  }
  std::vector<StatusOr<Chunk>> GetMany(
      std::span<const Hash256> ids) const override {
    Delay();
    return base_->GetMany(ids);
  }
  AsyncChunkBatch GetManyAsync(std::span<const Hash256> ids) const override {
    if (pool_.thread_count() == 0) return ChunkStore::GetManyAsync(ids);
    return AsyncChunkBatch::OnPool(
        pool_, [this, owned = std::vector<Hash256>(ids.begin(), ids.end())] {
          Delay();
          return base_->GetMany(owned);
        });
  }
  bool SupportsAsyncGet() const override { return pool_.thread_count() > 0; }
  bool Contains(const Hash256& id) const override {
    return base_->Contains(id);
  }
  ChunkStoreStats stats() const override { return base_->stats(); }
  void ForEach(const std::function<void(const Hash256&, const Chunk&)>& fn)
      const override {
    base_->ForEach(fn);
  }

 protected:
  Status PutImpl(const Chunk& chunk) override { return base_->Put(chunk); }
  Status PutManyImpl(std::span<const Chunk> chunks) override {
    return base_->PutMany(chunks);
  }

 private:
  void Delay() const {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
  }
  std::shared_ptr<ChunkStore> base_;
  const unsigned latency_us_;
  mutable WorkerPool pool_;
};

constexpr size_t kScanEntries = 100000;
constexpr unsigned kDeviceLatencyUs = 150;

void RunMapScan(benchmark::State& state, const ChunkStore* store,
                const Hash256& root) {
  PosTree tree(store, ChunkType::kMapLeaf, root);
  for (auto _ : state) {
    uint64_t count = 0;
    (void)tree.Scan([&count](const EntryView&) {
      ++count;
      return Status::OK();
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kScanEntries));
}

void BM_MapScanFileSync(benchmark::State& state) {
  ScopedStoreDir dir("scan_sync");
  FileChunkStore::Options options;
  options.prefetch_threads = 0;
  auto store = FileChunkStore::Open(dir.path(), options);
  auto kvs = RandomKvs(kScanEntries, 31);
  auto built = PosTree::BuildKeyed(store->get(), ChunkType::kMapLeaf, kvs);
  RunMapScan(state, store->get(), built->root);
}
BENCHMARK(BM_MapScanFileSync)->UseRealTime();

void BM_MapScanFileAsync(benchmark::State& state) {
  ScopedStoreDir dir("scan_async");
  FileChunkStore::Options options;
  options.prefetch_threads = 1;
  auto store = FileChunkStore::Open(dir.path(), options);
  auto kvs = RandomKvs(kScanEntries, 31);
  auto built = PosTree::BuildKeyed(store->get(), ChunkType::kMapLeaf, kvs);
  RunMapScan(state, store->get(), built->root);
}
BENCHMARK(BM_MapScanFileAsync)->UseRealTime();

void RunSlowDeviceScan(benchmark::State& state, size_t workers) {
  ScopedStoreDir dir("scan_slow" + std::to_string(workers));
  FileChunkStore::Options options;
  options.prefetch_threads = 0;  // the decorator owns the async workers
  auto file = FileChunkStore::Open(dir.path(), options);
  auto kvs = RandomKvs(kScanEntries, 32);
  auto built = PosTree::BuildKeyed(file->get(), ChunkType::kMapLeaf, kvs);
  SlowChunkStore store(std::shared_ptr<ChunkStore>(std::move(*file)),
                       kDeviceLatencyUs, workers);
  const size_t depth = GetScanPrefetchDepth();
  SetScanPrefetchDepth(workers > 0 ? 2 * workers : depth);
  RunMapScan(state, &store, built->root);
  SetScanPrefetchDepth(depth);
}

void BM_MapScanSlowDeviceSync(benchmark::State& state) {
  RunSlowDeviceScan(state, 0);
}
BENCHMARK(BM_MapScanSlowDeviceSync)->UseRealTime();

void BM_MapScanSlowDeviceAsync(benchmark::State& state) {
  RunSlowDeviceScan(state, 4);
}
BENCHMARK(BM_MapScanSlowDeviceAsync)->UseRealTime();

// ---- tiered store: hot-resident and cold-resident scans ------------------
//
// TieredHot measures the tier machinery's overhead when the working set is
// local: the scan pays one hot-tier Contains probe per id on top of the
// plain file-store scan. The TieredCold pair is the tiered acceptance
// criterion: the tree lives only on a slow remote cold tier (the same
// 150us/batch device class as the SlowDevice pair), and the async scan —
// cursor prefetch windows riding the remote's connection pool through
// TieredChunkStore::GetManyAsync — must beat the synchronous scan by the
// compare_bench.py floor. Promotion is off so every iteration measures
// steady cold reads, not a one-shot migration.

void BM_MapScanTieredHot(benchmark::State& state) {
  ScopedStoreDir dir("scan_tiered_hot");
  auto hot = FileChunkStore::Open(dir.path() + "/hot");
  auto kvs = RandomKvs(kScanEntries, 33);
  auto built = PosTree::BuildKeyed(hot->get(), ChunkType::kMapLeaf, kvs);
  auto cold_file = FileChunkStore::Open(dir.path() + "/cold");
  RemoteChunkStore::Options remote_options;
  remote_options.batch_latency_us = kDeviceLatencyUs;
  auto cold = std::make_shared<RemoteChunkStore>(
      std::shared_ptr<ChunkStore>(std::move(*cold_file)), remote_options);
  TieredChunkStore store(std::shared_ptr<ChunkStore>(std::move(*hot)),
                         std::move(cold));
  RunMapScan(state, &store, built->root);
}
BENCHMARK(BM_MapScanTieredHot)->UseRealTime();

void RunTieredColdScan(benchmark::State& state, size_t connections) {
  ScopedStoreDir dir("scan_tiered_cold" + std::to_string(connections));
  // The tree is built directly into the cold backend; the hot tier starts
  // (and stays) empty — the "fresh local disk over a populated remote"
  // state.
  auto cold_file = FileChunkStore::Open(dir.path() + "/cold");
  auto kvs = RandomKvs(kScanEntries, 34);
  auto built = PosTree::BuildKeyed(cold_file->get(), ChunkType::kMapLeaf, kvs);
  RemoteChunkStore::Options remote_options;
  remote_options.batch_latency_us = kDeviceLatencyUs;
  remote_options.connections = connections;
  auto cold = std::make_shared<RemoteChunkStore>(
      std::shared_ptr<ChunkStore>(std::move(*cold_file)), remote_options);
  auto hot = FileChunkStore::Open(dir.path() + "/hot");
  TieredChunkStore::Options tier_options;
  tier_options.promote_on_read = false;
  TieredChunkStore store(std::shared_ptr<ChunkStore>(std::move(*hot)),
                         std::move(cold), tier_options);
  const size_t depth = GetScanPrefetchDepth();
  SetScanPrefetchDepth(connections > 0 ? 2 * connections : depth);
  RunMapScan(state, &store, built->root);
  SetScanPrefetchDepth(depth);
}

void BM_MapScanTieredColdSync(benchmark::State& state) {
  RunTieredColdScan(state, 0);
}
BENCHMARK(BM_MapScanTieredColdSync)->UseRealTime();

void BM_MapScanTieredColdAsync(benchmark::State& state) {
  RunTieredColdScan(state, 4);
}
BENCHMARK(BM_MapScanTieredColdAsync)->UseRealTime();

// Bounded-tier churn: the tree lives on the slow cold tier and the hot
// budget holds only ~half of it, with promotion ON — so every scan
// continuously promotes the chunks it touches while the evictor erases
// (and the hot store's segment rewrite reclaims) the least-recent half
// behind it. This is the steady state of a working set larger than local
// disk; the async scan must still beat the synchronous unbounded cold scan
// (compare_bench.py floors it against BM_MapScanTieredColdSync).
void BM_MapScanTieredEvicting(benchmark::State& state) {
  ScopedStoreDir dir("scan_tiered_evicting");
  auto cold_file = FileChunkStore::Open(dir.path() + "/cold");
  auto kvs = RandomKvs(kScanEntries, 35);
  auto built = PosTree::BuildKeyed(cold_file->get(), ChunkType::kMapLeaf, kvs);
  const uint64_t tree_bytes = (*cold_file)->stats().physical_bytes;
  RemoteChunkStore::Options remote_options;
  remote_options.batch_latency_us = kDeviceLatencyUs;
  remote_options.connections = 4;
  auto cold = std::make_shared<RemoteChunkStore>(
      std::shared_ptr<ChunkStore>(std::move(*cold_file)), remote_options);
  FileChunkStore::Options hot_options;
  hot_options.segment_bytes = 256 << 10;  // rewrite at fine granularity
  auto hot = FileChunkStore::Open(dir.path() + "/hot", hot_options);
  TieredChunkStore::Options tier_options;
  tier_options.hot_bytes_budget = tree_bytes / 2;  // working set 2x budget
  TieredChunkStore store(std::shared_ptr<ChunkStore>(std::move(*hot)),
                         std::move(cold), tier_options);
  const size_t depth = GetScanPrefetchDepth();
  SetScanPrefetchDepth(8);
  RunMapScan(state, &store, built->root);
  SetScanPrefetchDepth(depth);
  state.counters["evictions"] = static_cast<double>(
      store.tier_stats().evictions);
}
BENCHMARK(BM_MapScanTieredEvicting)->UseRealTime();

// ---- group commit: concurrent FNode writers -----------------------------
//
// range(0) = 0: scalar commits (each Put pays its own append + flush).
// range(0) = 1: group commit (racing Puts drain as one PutMany + flush).
// Run at 1 and 4 threads; the 4-thread pair is the aggregate-throughput
// criterion for the commit queue.

class CommitBench : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (refs_++ == 0) {
      const bool grouped = state.range(0) != 0;
      dir_ = std::make_unique<ScopedStoreDir>(grouped ? "commit_grouped"
                                                      : "commit_scalar");
      ForkBase::OpenOptions open;
      open.prefetch_threads = 0;
      // Power-loss durability: every commit run fsyncs. This is the cost
      // the queue amortizes — scalar pays one sync per commit, the group
      // pays one per drain.
      open.fsync = true;
      open.options.group_commit = grouped;
      auto db = ForkBase::OpenPersistent(dir_->path(), open);
      db_ = std::move(*db);
    }
  }
  void TearDown(const benchmark::State&) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (--refs_ == 0) {
      db_.reset();
      dir_.reset();
    }
  }

 protected:
  static std::mutex mu_;
  static int refs_;
  static std::unique_ptr<ScopedStoreDir> dir_;
  static std::unique_ptr<ForkBase> db_;
};

std::mutex CommitBench::mu_;
int CommitBench::refs_ = 0;
std::unique_ptr<ScopedStoreDir> CommitBench::dir_;
std::unique_ptr<ForkBase> CommitBench::db_;

BENCHMARK_DEFINE_F(CommitBench, FNodeCommit)(benchmark::State& state) {
  // One branch per writer: heads race in the table, records race for the
  // append lock (scalar) or coalesce in the queue (grouped).
  const std::string branch = "w" + std::to_string(state.thread_index());
  uint64_t i = 0;
  for (auto _ : state) {
    auto uid = db_->Put("bench-key",
                        Value::String(branch + "-" + std::to_string(i++)),
                        branch);
    benchmark::DoNotOptimize(uid.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_REGISTER_F(CommitBench, FNodeCommit)
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

void BM_Verify(benchmark::State& state) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  auto kvs = RandomKvs(static_cast<size_t>(state.range(0)), 15);
  std::vector<std::pair<std::string, std::string>> pairs(kvs.begin(),
                                                         kvs.end());
  auto uid = db.PutMap("k", pairs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Verify(*uid).ok());
  }
}
BENCHMARK(BM_Verify)->Arg(1000)->Arg(10000);

// ---- sync export: full bundle vs. negotiated delta ----------------------
//
// The sync subsystem's win: after branch-head negotiation, a push exports
// only the chunks past the receiver's frontier (ExportDeltaBundle) instead
// of the head's whole closure (ExportBundle). The corpus is a map with a
// 64-commit history; the delta covers the last commit only, the regime of
// a steady-state replica that syncs every few commits.

struct SyncCorpus {
  std::shared_ptr<MemChunkStore> store;
  Hash256 prev;  ///< the replica's frontier: one commit behind
  Hash256 head;
};

const SyncCorpus& GetSyncCorpus() {
  static SyncCorpus corpus = [] {
    SyncCorpus c;
    c.store = std::make_shared<MemChunkStore>();
    ForkBase db(c.store);
    auto kvs = RandomKvs(20000, 17);
    std::vector<std::pair<std::string, std::string>> pairs(kvs.begin(),
                                                           kvs.end());
    (void)db.PutMap("k", pairs);
    for (int i = 0; i < 62; ++i) {
      (void)db.UpdateMap(
          "k", {KeyedOp{"bench-key-" + std::to_string(i), std::string("v")}});
    }
    c.prev = *db.Head("k");
    (void)db.UpdateMap("k", {KeyedOp{"bench-final", std::string("v")}});
    c.head = *db.Head("k");
    return c;
  }();
  return corpus;
}

void BM_SyncPushFull(benchmark::State& state) {
  const SyncCorpus& corpus = GetSyncCorpus();
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats = ExportBundle(*corpus.store, corpus.head, [&](Slice b) {
      bytes += b.size();
      return Status::OK();
    });
    benchmark::DoNotOptimize(stats.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  benchmark::DoNotOptimize(bytes);
}
BENCHMARK(BM_SyncPushFull);

void BM_SyncPushDelta(benchmark::State& state) {
  const SyncCorpus& corpus = GetSyncCorpus();
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats = ExportDeltaBundle(*corpus.store, {corpus.head},
                                   {corpus.prev}, [&](Slice b) {
                                     bytes += b.size();
                                     return Status::OK();
                                   });
    benchmark::DoNotOptimize(stats.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  benchmark::DoNotOptimize(bytes);
}
BENCHMARK(BM_SyncPushDelta);

// ---- GC: in-place sweep, copy collection, parallel compaction ------------
//
// The sweep pair sizes the two collectors against each other on the same
// corpus (half the chunks garbage). The Compact pair is the parallel-
// maintenance acceptance criterion: an administrative CompactBelow over
// ~dozens of eligible segments, run out on a 1-thread vs a 4-thread
// maintenance pool. Rewrites block on device reads (the page cache is
// dropped with posix_fadvise first) and on the pre-truncate fsync
// (fsync_on_flush is on), so the pool's overlap pays even on one core.

void BuildGcCorpus(ForkBase* db, uint64_t seed) {
  auto keep = RandomKvs(5000, seed);
  (void)db->PutMap("keep", keep);
  auto drop = RandomKvs(5000, seed + 1);
  (void)db->PutMap("drop", drop);
  (void)db->DeleteBranch("drop", "master");
}

void BM_GcSweepInPlace(benchmark::State& state) {
  uint64_t swept = 0;
  uint64_t seed = 40;
  for (auto _ : state) {
    state.PauseTiming();
    auto store = std::make_shared<MemChunkStore>();
    ForkBase db(store);
    BuildGcCorpus(&db, seed);
    seed += 2;
    state.ResumeTiming();
    auto stats = SweepInPlace(&db);
    benchmark::DoNotOptimize(stats.ok());
    if (stats.ok()) swept += stats->swept_chunks;
  }
  state.SetItemsProcessed(static_cast<int64_t>(swept));
}
BENCHMARK(BM_GcSweepInPlace);

void BM_GcCopyLive(benchmark::State& state) {
  // Same corpus as the sweep, but copy collection is non-destructive: one
  // source, a fresh destination per iteration.
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  BuildGcCorpus(&db, 42);
  uint64_t copied = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MemChunkStore dst;
    state.ResumeTiming();
    auto stats = CopyLive(db, &dst);
    benchmark::DoNotOptimize(stats.ok());
    if (stats.ok()) copied += stats->live_chunks;
  }
  state.SetItemsProcessed(static_cast<int64_t>(copied));
}
BENCHMARK(BM_GcCopyLive);

// Drops every segment's pages from the cache so the rewrites that follow
// read the device, not memory — the cold-store regime compaction runs in.
void DropSegmentPageCache(const std::string& dir) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".fbc") continue;
    int fd = ::open(entry.path().c_str(), O_RDONLY);
    if (fd < 0) continue;
    (void)::fsync(fd);  // dirty pages would survive DONTNEED
    (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    ::close(fd);
  }
}

void RunCompactBench(benchmark::State& state, uint32_t threads) {
  FileChunkStore::Options options;
  options.segment_bytes = 64 << 10;  // ~37 segments of 256 B records
  options.compact_live_ratio = 0;    // nothing rewrites until CompactBelow
  options.background_compaction = true;
  options.maintenance_threads = threads;
  options.fsync_on_flush = true;  // rewrites pay the pre-truncate sync
  // Model a device with ~500us sync latency (same methodology as the
  // SlowDevice scan benches): the measured ratio then reflects how well the
  // maintenance pool overlaps per-segment device waits, instead of the
  // runner's disk — this host's virtio disk serves fsyncs and cold reads
  // almost serially, which would drown the scheduling signal in noise.
  options.rewrite_sync_delay_for_testing = std::chrono::microseconds(500);
  uint64_t counter = 0;
  uint64_t rewritten = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ScopedStoreDir dir("compact" + std::to_string(threads));
    auto store_or = FileChunkStore::Open(dir.path(), options);
    auto& store = **store_or;
    auto chunks = MakeUniqueChunks(8192, &counter);
    (void)store.PutMany(chunks);
    std::vector<Hash256> victims;
    for (size_t i = 0; i < chunks.size(); ++i) {
      if (i % 4 != 0) victims.push_back(chunks[i].hash());
    }
    (void)store.Erase(victims);
    DropSegmentPageCache(dir.path());
    state.ResumeTiming();
    const size_t queued = store.CompactBelow(1.0);
    store.WaitForMaintenance();
    benchmark::DoNotOptimize(queued);
    state.PauseTiming();
    rewritten += store.maintenance_stats().segments_rewritten;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(rewritten));
}

void BM_CompactSerial(benchmark::State& state) { RunCompactBench(state, 1); }
BENCHMARK(BM_CompactSerial)->UseRealTime();

void BM_CompactParallel(benchmark::State& state) { RunCompactBench(state, 4); }
BENCHMARK(BM_CompactParallel)->UseRealTime();

// ---- encoded segment storage: footprint and read tax ---------------------

// A 64-commit versioned corpus: every commit is the previous ~4 KiB payload
// with a 24-byte splice re-randomized and a few bytes appended — the
// successive-versions shape delta chains exist for.
std::vector<Chunk> VersionedCorpus(size_t commits) {
  Rng rng(81);
  std::string payload = rng.NextBytes(4096);
  std::vector<Chunk> chunks;
  chunks.reserve(commits);
  for (size_t v = 0; v < commits; ++v) {
    if (v > 0) {
      size_t off = rng.Uniform(payload.size() - 24);
      for (size_t i = 0; i < 24; ++i) {
        payload[off + i] = static_cast<char>(rng.Uniform(256));
      }
      payload += rng.NextBytes(8);
    }
    chunks.push_back(Chunk::Make(ChunkType::kCell, payload));
  }
  return chunks;
}

uint64_t CorpusPhysicalBytes(const FileChunkStore::Options& options,
                             const std::string& tag) {
  ScopedStoreDir dir(tag);
  auto store = FileChunkStore::Open(dir.path(), options);
  auto corpus = VersionedCorpus(64);
  (void)(*store)->PutMany(corpus);
  (void)(*store)->Flush();
  return (*store)->space_used();
}

// Not a timing benchmark: a deterministic size measurement smuggled through
// the ratio gate. Manual time is pinned to 1 s and items to the store's
// physical footprint, so items_per_second IS the byte count and the
// compare_bench ratio raw/encoded is exactly the storage saving. The gate
// floors it at 1.67x — i.e. the encoded corpus must stay <= 0.6x raw.
void BM_VersionedCorpusBytesRaw(benchmark::State& state) {
  uint64_t bytes = 0;
  for (auto _ : state) {
    bytes = CorpusPhysicalBytes(FileChunkStore::Options{}, "corpus_raw");
    state.SetIterationTime(1.0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_VersionedCorpusBytesRaw)->UseManualTime();

void BM_VersionedCorpusBytesEncoded(benchmark::State& state) {
  FileChunkStore::Options options;
  options.compression = FileChunkStore::Compression::kLz;
  options.delta_chain_depth = 4;
  options.delta_window = 8;
  uint64_t bytes = 0;
  for (auto _ : state) {
    bytes = CorpusPhysicalBytes(options, "corpus_encoded");
    state.SetIterationTime(1.0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_VersionedCorpusBytesEncoded)->UseManualTime();

// The read-side tax of compression on a COLD scan: batched GetMany over a
// compressible corpus through the SlowChunkStore device model (the same
// 150us/batch class as the scan benches above), raw store vs LZ store.
// Every LZ record decompresses on read, but a cold scan is latency-bound,
// so the decode has to hide inside the device wait. The gate floors
// compressed at 0.8x raw — representation may cost a fifth of cold-scan
// throughput, no more.
void RunEncodedScanBench(benchmark::State& state,
                         const FileChunkStore::Options& options,
                         const std::string& tag) {
  ScopedStoreDir dir(tag);
  auto file = FileChunkStore::Open(dir.path(), options);
  Rng rng(82);
  std::vector<Chunk> chunks;
  std::vector<Hash256> ids;
  for (size_t i = 0; i < 512; ++i) {
    // Compressible but not degenerate: a mutating tiling of a 256-byte
    // alphabet, distinct per chunk.
    std::string payload;
    payload.reserve(4096);
    std::string tile = rng.NextBytes(256);
    while (payload.size() < 4096) {
      tile[rng.Uniform(tile.size())] = static_cast<char>(rng.Uniform(256));
      payload += tile;
    }
    chunks.push_back(Chunk::Make(ChunkType::kCell, payload));
    ids.push_back(chunks.back().hash());
  }
  (void)(*file)->PutMany(chunks);
  (void)(*file)->Flush();
  SlowChunkStore store(std::shared_ptr<ChunkStore>(std::move(*file)),
                       kDeviceLatencyUs, /*workers=*/0);
  constexpr size_t kBatch = 32;
  for (auto _ : state) {
    for (size_t off = 0; off < ids.size(); off += kBatch) {
      auto results = store.GetMany(std::span<const Hash256>(
          ids.data() + off, std::min(kBatch, ids.size() - off)));
      benchmark::DoNotOptimize(results.size());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ids.size()));
}

void BM_ScanRawStore(benchmark::State& state) {
  RunEncodedScanBench(state, FileChunkStore::Options{}, "scan_raw");
}
BENCHMARK(BM_ScanRawStore)->UseRealTime();

void BM_ScanCompressedStore(benchmark::State& state) {
  FileChunkStore::Options options;
  options.compression = FileChunkStore::Compression::kLz;
  RunEncodedScanBench(state, options, "scan_lz");
}
BENCHMARK(BM_ScanCompressedStore)->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace forkbase

BENCHMARK_MAIN();

// A4 — micro-benchmarks of core primitives and operations, on
// google-benchmark. Covers: SHA-256 and rolling-hash throughput, POS-Tree
// build / lookup / commit / scan / diff, blob read, ForkBase Put/Get, and
// batched vs. scalar chunk-store I/O (the baseline for the sharded batch
// subsystem).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>

#include "bench_common.h"
#include "chunk/file_chunk_store.h"
#include "chunk/mem_chunk_store.h"
#include "postree/diff.h"
#include "store/forkbase.h"
#include "util/rolling_hash.h"
#include "util/sha256.h"

namespace forkbase {
namespace bench {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::string data = Rng(1).NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(256)->Arg(4096)->Arg(65536);

void BM_RollingHash(benchmark::State& state) {
  std::string data = Rng(2).NextBytes(1 << 20);
  RollingHash h(48, 12);
  for (auto _ : state) {
    uint64_t fired = 0;
    for (char c : data) fired += h.Roll(static_cast<uint8_t>(c));
    benchmark::DoNotOptimize(fired);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_RollingHash);

void BM_MapBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto kvs = RandomKvs(n, n);
  for (auto _ : state) {
    MemChunkStore store;
    auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
    benchmark::DoNotOptimize(info.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MapBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MapLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MemChunkStore store;
  auto kvs = RandomKvs(n, n);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  Rng rng(7);
  for (auto _ : state) {
    auto v = tree.Lookup(kvs[rng.Uniform(kvs.size())].first);
    benchmark::DoNotOptimize(v.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MapLookup)->Arg(1000)->Arg(100000);

void BM_MapCommit(benchmark::State& state) {
  // One-key functional update (the write path of every Put).
  const size_t n = static_cast<size_t>(state.range(0));
  MemChunkStore store;
  auto kvs = RandomKvs(n, n);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  Rng rng(8);
  int i = 0;
  for (auto _ : state) {
    auto updated = tree.ApplyKeyedOps(
        {KeyedOp{kvs[rng.Uniform(kvs.size())].first,
                 "v" + std::to_string(i++)}});
    benchmark::DoNotOptimize(updated.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MapCommit)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MapScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MemChunkStore store;
  auto kvs = RandomKvs(n, n);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  for (auto _ : state) {
    uint64_t count = 0;
    (void)tree.Scan([&count](const EntryView&) {
      ++count;
      return Status::OK();
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MapScan)->Arg(10000)->Arg(100000);

void BM_Diff(benchmark::State& state) {
  const size_t n = 100000;
  const size_t d = static_cast<size_t>(state.range(0));
  MemChunkStore store;
  auto kvs = RandomKvs(n, 9);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  PosTree a(&store, ChunkType::kMapLeaf, info->root);
  Rng rng(10);
  std::vector<KeyedOp> ops;
  for (size_t i = 0; i < d; ++i) {
    ops.push_back(
        KeyedOp{kvs[rng.Uniform(kvs.size())].first, rng.NextString(8)});
  }
  auto edited = a.ApplyKeyedOps(ops);
  PosTree b(&store, ChunkType::kMapLeaf, edited->root);
  for (auto _ : state) {
    auto deltas = DiffKeyed(a, b);
    benchmark::DoNotOptimize(deltas.ok());
  }
}
BENCHMARK(BM_Diff)->Arg(1)->Arg(64)->Arg(1024);

void BM_BlobBuild(benchmark::State& state) {
  std::string data = Rng(11).NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    MemChunkStore store;
    auto info = PosTree::BuildBlob(&store, data);
    benchmark::DoNotOptimize(info.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BlobBuild)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

void BM_BlobRead(benchmark::State& state) {
  MemChunkStore store;
  std::string data = Rng(12).NextBytes(8 << 20);
  auto info = PosTree::BuildBlob(&store, data);
  PosTree tree(&store, ChunkType::kBlobLeaf, info->root,
               TreeConfig::ForBlob());
  Rng rng(13);
  std::string out;
  for (auto _ : state) {
    uint64_t offset = rng.Uniform((8 << 20) - 65536);
    (void)tree.ReadBytes(offset, 65536, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_BlobRead);

void BM_ForkBasePutGetString(benchmark::State& state) {
  ForkBase db(std::make_shared<MemChunkStore>());
  Rng rng(14);
  int i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(i % 64);
    (void)db.Put(key, Value::String("value-" + std::to_string(i)));
    auto v = db.Get(key);
    benchmark::DoNotOptimize(v.ok());
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ForkBasePutGetString);

// ---- batched vs. scalar chunk-store I/O ----------------------------------
//
// The pairs below are the throughput baseline for FileChunkStore's batch
// subsystem: scalar Put pays one record append + fflush per chunk, PutMany
// one per batch; scalar Get opens its segment per call, GetMany opens each
// touched segment once per batch. Chunk payloads are small (256 B) so the
// per-call overhead, not the payload copy, dominates — the regime every
// POS-Tree node write/read lives in.

constexpr size_t kIoChunkBytes = 256;

// Fresh unique chunks, pre-hashed so the SHA cost stays out of the timed
// region for both sides of each comparison.
std::vector<Chunk> MakeUniqueChunks(size_t n, uint64_t* counter) {
  std::vector<Chunk> chunks;
  chunks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string payload = "unique-" + std::to_string((*counter)++);
    payload.resize(kIoChunkBytes, 'x');
    chunks.push_back(Chunk::Make(ChunkType::kCell, payload));
    chunks.back().hash();
  }
  return chunks;
}

class ScopedStoreDir {
 public:
  explicit ScopedStoreDir(const std::string& tag)
      : dir_(std::filesystem::temp_directory_path() /
             ("fb_bench_" + tag + std::to_string(::getpid()))) {
    std::filesystem::remove_all(dir_);
  }
  ~ScopedStoreDir() { std::filesystem::remove_all(dir_); }
  std::string path() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

void BM_FileStorePutScalar(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ScopedStoreDir dir("put_scalar");
  auto store = FileChunkStore::Open(dir.path());
  uint64_t counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto chunks = MakeUniqueChunks(batch, &counter);
    state.ResumeTiming();
    for (const auto& c : chunks) {
      benchmark::DoNotOptimize((*store)->Put(c).ok());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch * kIoChunkBytes));
}
BENCHMARK(BM_FileStorePutScalar)->Arg(64)->Arg(256)->Arg(1024);

void BM_FileStorePutBatched(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ScopedStoreDir dir("put_batched");
  auto store = FileChunkStore::Open(dir.path());
  uint64_t counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto chunks = MakeUniqueChunks(batch, &counter);
    state.ResumeTiming();
    benchmark::DoNotOptimize((*store)->PutMany(chunks).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch * kIoChunkBytes));
}
BENCHMARK(BM_FileStorePutBatched)->Arg(64)->Arg(256)->Arg(1024);

void BM_FileStoreGetScalar(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ScopedStoreDir dir("get_scalar");
  auto store = FileChunkStore::Open(dir.path());
  uint64_t counter = 0;
  auto chunks = MakeUniqueChunks(4096, &counter);
  (void)(*store)->PutMany(chunks);
  Rng rng(21);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Hash256> ids;
    ids.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      ids.push_back(chunks[rng.Uniform(chunks.size())].hash());
    }
    state.ResumeTiming();
    for (const auto& id : ids) {
      benchmark::DoNotOptimize((*store)->Get(id).ok());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_FileStoreGetScalar)->Arg(64)->Arg(256);

void BM_FileStoreGetBatched(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ScopedStoreDir dir("get_batched");
  auto store = FileChunkStore::Open(dir.path());
  uint64_t counter = 0;
  auto chunks = MakeUniqueChunks(4096, &counter);
  (void)(*store)->PutMany(chunks);
  Rng rng(22);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Hash256> ids;
    ids.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      ids.push_back(chunks[rng.Uniform(chunks.size())].hash());
    }
    state.ResumeTiming();
    auto results = (*store)->GetMany(ids);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_FileStoreGetBatched)->Arg(64)->Arg(256);

void BM_Verify(benchmark::State& state) {
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  auto kvs = RandomKvs(static_cast<size_t>(state.range(0)), 15);
  std::vector<std::pair<std::string, std::string>> pairs(kvs.begin(),
                                                         kvs.end());
  auto uid = db.PutMap("k", pairs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Verify(*uid).ok());
  }
}
BENCHMARK(BM_Verify)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace bench
}  // namespace forkbase

BENCHMARK_MAIN();

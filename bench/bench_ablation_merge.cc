// Ablation A2 — Fig. 3: three-way merge reuses disjointly modified subtrees.
//
// Two branches edit disjoint key ranges of an N-entry map; the merge's diff
// phase is hash-pruned and its merge phase rebuilds only the divergent
// region — measured as (a) merge latency vs an element-wise merge that
// rebuilds the whole object from scratch, and (b) the fraction of the merged
// tree's chunks that are physically reused from the inputs.
#include <set>

#include "bench_common.h"
#include "chunk/mem_chunk_store.h"
#include "postree/diff.h"
#include "postree/merge.h"

namespace forkbase {
namespace bench {
namespace {

// Element-wise merge baseline: materialize all three entry lists, merge
// key-by-key, rebuild the result tree from scratch.
StatusOr<TreeInfo> ElementwiseMerge(const PosTree& base, const PosTree& left,
                                    const PosTree& right, ChunkStore* store) {
  FB_ASSIGN_OR_RETURN(auto eb, base.Entries());
  FB_ASSIGN_OR_RETURN(auto el, left.Entries());
  FB_ASSIGN_OR_RETURN(auto er, right.Entries());
  std::map<std::string, std::string> mb(eb.begin(), eb.end());
  std::map<std::string, std::string> ml(el.begin(), el.end());
  std::map<std::string, std::string> mr(er.begin(), er.end());
  std::map<std::string, std::string> merged = mr;
  for (const auto& [k, v] : ml) {
    auto bit = mb.find(k);
    if (bit == mb.end() || bit->second != v) merged[k] = v;  // left edited
  }
  for (const auto& [k, v] : mb) {
    (void)v;
    if (!ml.count(k)) merged.erase(k);  // left deleted
  }
  return PosTree::BuildKeyed(
      store, ChunkType::kMapLeaf,
      std::vector<std::pair<std::string, std::string>>(merged.begin(),
                                                       merged.end()));
}

void Run() {
  PrintHeader("A2 (Fig. 3): subtree merge vs element-wise merge");
  std::printf("%-9s %-7s %15s %16s %9s %14s\n", "N", "edits/side",
              "subtree (us)", "elemwise (us)", "speedup", "chunks reused");
  PrintRule();
  for (size_t n : {4096u, 32768u, 131072u}) {
    auto store = std::make_shared<MemChunkStore>();
    auto kvs = RandomKvs(n, n + 3);
    auto info = PosTree::BuildKeyed(store.get(), ChunkType::kMapLeaf, kvs);
    if (!info.ok()) return;
    PosTree base(store.get(), ChunkType::kMapLeaf, info->root);

    for (size_t edits : {4u, 64u}) {
      // Left edits the low key range, right the high range — disjoint.
      std::vector<KeyedOp> left_ops, right_ops;
      for (size_t i = 0; i < edits; ++i) {
        left_ops.push_back(KeyedOp{kvs[i].first, "L" + std::to_string(i)});
        right_ops.push_back(
            KeyedOp{kvs[kvs.size() - 1 - i].first, "R" + std::to_string(i)});
      }
      auto li = base.ApplyKeyedOps(left_ops);
      auto ri = base.ApplyKeyedOps(right_ops);
      if (!li.ok() || !ri.ok()) return;
      PosTree left(store.get(), ChunkType::kMapLeaf, li->root);
      PosTree right(store.get(), ChunkType::kMapLeaf, ri->root);

      Timer ts;
      auto merged = MergeKeyed(base, left, right);
      double subtree_us = ts.ElapsedUs();
      if (!merged.ok()) return;

      Timer te;
      auto elem = ElementwiseMerge(base, left, right, store.get());
      double elem_us = te.ElapsedUs();
      if (!elem.ok()) return;
      if (elem->root != merged->merged.root) {
        std::printf("MERGE MISMATCH at N=%zu!\n", n);
        return;
      }

      // Chunk reuse: merged-tree chunks already present in inputs.
      PosTree merged_tree(store.get(), ChunkType::kMapLeaf,
                          merged->merged.root);
      std::vector<Hash256> merged_pages, input_pages;
      if (!merged_tree.ReachableChunks(&merged_pages).ok()) return;
      for (const PosTree* t : {&base, &left, &right}) {
        std::vector<Hash256> pages;
        if (!t->ReachableChunks(&pages).ok()) return;
        input_pages.insert(input_pages.end(), pages.begin(), pages.end());
      }
      std::set<Hash256> inputs(input_pages.begin(), input_pages.end());
      size_t reused = 0;
      for (const auto& p : merged_pages) reused += inputs.count(p);
      std::printf("%-9zu %-10zu %15.1f %16.1f %8.1fx %7zu/%zu\n", n, edits,
                  subtree_us, elem_us, elem_us / subtree_us, reused,
                  merged_pages.size());
    }
  }
  std::printf(
      "expected shape: identical merge results; the subtree merge's diff\n"
      "phase is O(D log N) and its rebuild shares all untouched chunks,\n"
      "so speedup grows with N/D and reuse stays near 100%%.\n");
}

}  // namespace
}  // namespace bench
}  // namespace forkbase

int main() {
  forkbase::bench::Run();
  return 0;
}

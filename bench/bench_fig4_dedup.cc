// Experiment E2 — Fig. 4: fine-grained data deduplication.
//
// The demo loads a ~338 KB CSV as dataset-1 (+338.54 KB of storage), then a
// copy with a single-word difference as dataset-2 (+0.04 KB). We reproduce
// the scenario with the synthetic CSV generator and additionally sweep the
// number of edited cells, comparing ForkBase against the CopyStore (no
// dedup) and DeltaStore (table-oriented delta) baselines.
//
// Expected shape: dataset-2 costs orders of magnitude less than dataset-1 in
// ForkBase (chunk granularity bounds the floor), exactly dataset-1's size in
// CopyStore, and a small delta in DeltaStore (which, however, pays replay on
// reads and offers no tamper evidence — see Table I).
#include "baselines/copy_store.h"
#include "baselines/delta_store.h"
#include "bench_common.h"
#include "chunk/mem_chunk_store.h"
#include "store/forkbase.h"
#include "util/datagen.h"

namespace forkbase {
namespace bench {
namespace {

DeltaStore::RowMap RowsOf(const CsvDocument& doc) {
  DeltaStore::RowMap rows;
  for (const auto& r : doc.rows) {
    std::string payload;
    for (const auto& c : r) payload += c + "\x1f";
    rows[r[0]] = payload;
  }
  return rows;
}

void RunScenario() {
  PrintHeader("Fig. 4 (E2): fine-grained deduplication, single-word edit");
  CsvGenOptions opts;
  opts.target_bytes = 338 * 1024;
  CsvDocument ds1 = GenerateCsv(opts);
  CsvDocument ds2 = EditOneWord(ds1, ds1.rows.size() / 2, 2, "VendorX");
  const double csv_kb = ToKb(CsvBytes(ds1));
  std::printf("dataset CSV size: %.2f KB, %zu rows x %zu cols\n", csv_kb,
              ds1.rows.size(), ds1.header.size());

  // --- ForkBase ---
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  Timer t1;
  if (!db.PutTableFromCsv("dataset-1", ds1).ok()) return;
  double load1_ms = t1.ElapsedMs();
  uint64_t after1 = store->stats().physical_bytes;
  Timer t2;
  if (!db.PutTableFromCsv("dataset-2", ds2).ok()) return;
  double load2_ms = t2.ElapsedMs();
  uint64_t delta2 = store->stats().physical_bytes - after1;

  // --- CopyStore ---
  CopyStore copy;
  copy.Put("dataset-1", "master", WriteCsv(ds1));
  uint64_t copy1 = copy.stats().physical_bytes;
  copy.Put("dataset-2", "master", WriteCsv(ds2));
  uint64_t copy2 = copy.stats().physical_bytes - copy1;

  // --- DeltaStore (dataset-2 as a delta-versioned chain of dataset-1) ---
  DeltaStore delta(32);
  (void)delta.Put("dataset", "master", RowsOf(ds1));
  uint64_t delta1 = delta.stats().physical_bytes;
  (void)delta.Put("dataset", "master", RowsOf(ds2));
  uint64_t delta2_cost = delta.stats().physical_bytes - delta1;

  PrintRule();
  std::printf("%-28s %14s %14s %9s\n", "system", "load-1 (KB)", "load-2 (KB)",
              "ratio");
  PrintRule();
  std::printf("%-28s %14.2f %14.2f %9s\n", "paper (ForkBase demo)", 338.54,
              0.04, "8464x");
  std::printf("%-28s %14.2f %14.2f %8.0fx   [%.1f/%.1f ms]\n",
              "forkbase (this repo)", ToKb(after1), ToKb(delta2),
              static_cast<double>(after1) / static_cast<double>(delta2),
              load1_ms, load2_ms);
  std::printf("%-28s %14.2f %14.2f %8.1fx\n", "copy baseline (RStore-like)",
              ToKb(copy1), ToKb(copy2),
              static_cast<double>(copy1) / static_cast<double>(copy2));
  std::printf("%-28s %14.2f %14.2f %8.0fx\n",
              "delta baseline (Orpheus-like)", ToKb(delta1), ToKb(delta2_cost),
              static_cast<double>(delta1) / static_cast<double>(delta2_cost));
  std::printf(
      "note: ForkBase's load-2 floor is one chunk chain (~2^q B pages);\n"
      "      the paper's 0.04 KB reflects its chunking config. The shape —\n"
      "      second load orders of magnitude below the first — reproduces.\n");
}

void RunEditSweep() {
  PrintHeader("Fig. 4 sweep: storage delta vs number of edited cells");
  CsvGenOptions opts;
  opts.target_bytes = 338 * 1024;
  CsvDocument ds1 = GenerateCsv(opts);

  std::printf("%-12s %18s %16s\n", "edited cells", "forkbase (KB)",
              "copy (KB)");
  PrintRule();
  for (size_t edits : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    auto store = std::make_shared<MemChunkStore>();
    ForkBase db(store);
    if (!db.PutTableFromCsv("base", ds1).ok()) return;
    uint64_t baseline = store->stats().physical_bytes;
    CsvDocument edited = EditCells(ds1, edits, /*seed=*/edits * 13 + 1);
    if (!db.PutTableFromCsv("edited", edited).ok()) return;
    uint64_t delta = store->stats().physical_bytes - baseline;
    std::printf("%-12zu %18.2f %16.2f\n", edits, ToKb(delta),
                ToKb(CsvBytes(edited)));
  }
  std::printf("expected shape: ForkBase grows with edit count (sublinearly,\n"
              "chunk-granular), the copy baseline always pays the full size.\n");
}

void RunVersionArchive() {
  PrintHeader("Fig. 4 companion: archiving 100 single-edit versions");
  CsvGenOptions opts;
  opts.num_rows = 2000;
  CsvDocument doc = GenerateCsv(opts);
  auto store = std::make_shared<MemChunkStore>();
  ForkBase db(store);
  if (!db.PutTableFromCsv("archive", doc).ok()) return;
  uint64_t baseline = store->stats().physical_bytes;
  CopyStore copy;
  copy.Put("archive", "master", WriteCsv(doc));

  Rng rng(99);
  for (int v = 0; v < 100; ++v) {
    auto table = db.GetTable("archive");
    if (!table.ok()) return;
    char key[16];
    std::snprintf(key, sizeof(key), "r%08d",
                  static_cast<int>(rng.Uniform(doc.rows.size())));
    auto edited =
        table->UpdateCell(key, 1 + rng.Uniform(doc.header.size() - 1),
                          "edit-" + std::to_string(v));
    if (!edited.ok()) return;
    if (!db.Put("archive", Value::OfTable(edited->id())).ok()) return;
    auto csv = edited->ToCsv();
    copy.Put("archive", "master", WriteCsv(*csv));
  }
  uint64_t fb_total = store->stats().physical_bytes;
  uint64_t copy_total = copy.stats().physical_bytes;
  std::printf("dataset: %.1f KB, 101 versions\n", ToKb(baseline));
  std::printf("%-28s %14s %22s\n", "system", "total (MB)",
              "bytes per version (KB)");
  PrintRule();
  std::printf("%-28s %14.2f %22.2f\n", "forkbase", ToMb(fb_total),
              ToKb((fb_total - baseline) / 100));
  std::printf("%-28s %14.2f %22.2f\n", "copy baseline", ToMb(copy_total),
              ToKb(copy_total / 101));
  std::printf("dedup ratio (logical/physical): %.1fx\n",
              store->stats().DedupRatio());
}

}  // namespace
}  // namespace bench
}  // namespace forkbase

int main() {
  forkbase::bench::RunScenario();
  forkbase::bench::RunEditSweep();
  forkbase::bench::RunVersionArchive();
  return 0;
}

// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table or figure of the ICDE'20 paper
// (see DESIGN.md §3 for the experiment index) and prints paper-reported
// values next to measured ones where the paper gives numbers.
#ifndef FORKBASE_BENCH_BENCH_COMMON_H_
#define FORKBASE_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "util/random.h"

namespace forkbase {
namespace bench {

/// Wall-clock stopwatch in microseconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedUs() const {
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(end - start_).count();
  }
  double ElapsedMs() const { return ElapsedUs() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Sorted random key-value records for map/table workloads.
inline std::vector<std::pair<std::string, std::string>> RandomKvs(
    size_t n, uint64_t seed, size_t key_len = 16, size_t val_len = 32) {
  Rng rng(seed);
  std::map<std::string, std::string> sorted;
  while (sorted.size() < n) {
    sorted[rng.NextString(key_len)] = rng.NextString(val_len);
  }
  return {sorted.begin(), sorted.end()};
}

inline double ToKb(uint64_t bytes) {
  return static_cast<double>(bytes) / 1024.0;
}
inline double ToMb(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("-----------------------------------------------------------------------\n");
}

}  // namespace bench
}  // namespace forkbase

#endif  // FORKBASE_BENCH_BENCH_COMMON_H_

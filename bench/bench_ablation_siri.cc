// Ablation A1 — the SIRI properties (Def. 1): POS-Tree vs an ordinary
// B+-tree.
//
//  (1) Structural invariance: identical record sets inserted in different
//      orders must yield identical page sets (POS-Tree) — a B+-tree's page
//      set depends on insertion order.
//  (2) Recursive identity: versions differing by one record share almost
//      all pages.
//  (3) Universal reusability: pages of a small instance reappear in larger
//      instances.
// Expected shape: POS-Tree shares ~100% / ~all-but-a-path / most pages;
// the B+-tree shares little in (1), which is why page-level dedup across
// index instances is ineffective for classical primary indexes (§II-A).
#include <set>

#include "baselines/bplus_tree.h"
#include "bench_common.h"
#include "chunk/mem_chunk_store.h"
#include "postree/tree.h"

namespace forkbase {
namespace bench {
namespace {

size_t SharedPages(const std::vector<Hash256>& a,
                   const std::vector<Hash256>& b) {
  std::set<Hash256> sa(a.begin(), a.end());
  size_t shared = 0;
  for (const auto& h : b) shared += sa.count(h);
  return shared;
}

void RunStructuralInvariance() {
  PrintHeader("A1.1 structural invariance: shuffled insertion orders");
  std::printf("%-9s %22s %22s\n", "N", "pos-tree shared pages",
              "b+-tree shared pages");
  PrintRule();
  for (size_t n : {1000u, 10000u, 50000u}) {
    auto kvs = RandomKvs(n, n);

    // POS-Tree: bulk build vs incremental build in shuffled order.
    MemChunkStore s1, s2;
    auto bulk = PosTree::BuildKeyed(&s1, ChunkType::kMapLeaf, kvs);
    if (!bulk.ok()) return;
    auto shuffled = kvs;
    Rng rng(n + 1);
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
    }
    // Insert in 10 shuffled batches.
    auto partial = PosTree::BuildKeyed(&s2, ChunkType::kMapLeaf, {});
    if (!partial.ok()) return;
    PosTree tree(&s2, ChunkType::kMapLeaf, partial->root);
    const size_t batch = shuffled.size() / 10 + 1;
    for (size_t start = 0; start < shuffled.size(); start += batch) {
      std::vector<KeyedOp> ops;
      for (size_t i = start; i < std::min(start + batch, shuffled.size());
           ++i) {
        ops.push_back(KeyedOp{shuffled[i].first, shuffled[i].second});
      }
      auto next = tree.ApplyKeyedOps(ops);
      if (!next.ok()) return;
      tree = PosTree(&s2, ChunkType::kMapLeaf, next->root);
    }
    PosTree bulk_tree(&s1, ChunkType::kMapLeaf, bulk->root);
    std::vector<Hash256> pages_bulk, pages_inc;
    if (!bulk_tree.ReachableChunks(&pages_bulk).ok()) return;
    if (!tree.ReachableChunks(&pages_inc).ok()) return;
    size_t pos_shared = SharedPages(pages_bulk, pages_inc);

    // B+-tree: two insertion orders.
    BPlusTree bt1(64), bt2(64);
    for (const auto& [k, v] : kvs) bt1.Insert(k, v);
    for (const auto& [k, v] : shuffled) bt2.Insert(k, v);
    auto ph1 = bt1.PageHashes();
    auto ph2 = bt2.PageHashes();
    size_t bt_shared = SharedPages(ph1, ph2);

    std::printf("%-9zu %11zu / %-8zu %11zu / %-8zu\n", n, pos_shared,
                pages_inc.size(), bt_shared, ph2.size());
  }
  std::printf("expected: POS-Tree shares 100%% (identical roots); the\n"
              "B+-tree's page overlap collapses as N grows.\n");
}

void RunRecursiveIdentity() {
  PrintHeader("A1.2 recursive identity: page sharing across 100 versions");
  MemChunkStore store;
  auto kvs = RandomKvs(20000, 17);
  auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs);
  if (!info.ok()) return;
  PosTree tree(&store, ChunkType::kMapLeaf, info->root);
  uint64_t sum_pages = 0;
  Rng rng(18);
  std::vector<Hash256> roots{info->root};
  for (int v = 0; v < 100; ++v) {
    auto next = tree.ApplyKeyedOps(
        {KeyedOp{kvs[rng.Uniform(kvs.size())].first,
                 "v" + std::to_string(v)}});
    if (!next.ok()) return;
    tree = PosTree(&store, ChunkType::kMapLeaf, next->root);
    roots.push_back(next->root);
  }
  std::set<Hash256> distinct;
  for (const auto& root : roots) {
    PosTree t(&store, ChunkType::kMapLeaf, root);
    std::vector<Hash256> pages;
    if (!t.ReachableChunks(&pages).ok()) return;
    sum_pages += pages.size();
    distinct.insert(pages.begin(), pages.end());
  }
  std::printf("versions: %zu; sum of per-version pages: %llu; distinct "
              "pages stored: %zu\n",
              roots.size(), static_cast<unsigned long long>(sum_pages),
              distinct.size());
  std::printf("physical page amplification: %.2fx (1.0 = perfect sharing; "
              "naive copies would be %.0fx)\n",
              static_cast<double>(distinct.size()) /
                  (static_cast<double>(sum_pages) /
                   static_cast<double>(roots.size())),
              static_cast<double>(roots.size()));
}

void RunUniversalReusability() {
  PrintHeader("A1.3 universal reusability: small instance inside larger ones");
  MemChunkStore store;
  auto base = RandomKvs(8000, 19);
  auto small_info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, base);
  if (!small_info.ok()) return;
  PosTree small(&store, ChunkType::kMapLeaf, small_info->root);
  std::vector<Hash256> small_pages;
  if (!small.ReachableChunks(&small_pages).ok()) return;

  std::printf("%-14s %18s %16s\n", "added records", "small pages reused",
              "of small total");
  PrintRule();
  Rng rng(20);
  for (size_t extra : {1000u, 4000u, 16000u}) {
    auto big = base;
    for (size_t i = 0; i < extra; ++i) {
      big.emplace_back("zzz" + rng.NextString(13), rng.NextString(32));
    }
    std::sort(big.begin(), big.end());
    auto big_info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, big);
    if (!big_info.ok()) return;
    PosTree big_tree(&store, ChunkType::kMapLeaf, big_info->root);
    std::vector<Hash256> big_pages;
    if (!big_tree.ReachableChunks(&big_pages).ok()) return;
    size_t reused = SharedPages(big_pages, small_pages);
    std::printf("%-14zu %18zu %15.1f%%\n", extra, reused,
                100.0 * static_cast<double>(reused) /
                    static_cast<double>(small_pages.size()));
  }
}

}  // namespace
}  // namespace bench
}  // namespace forkbase

int main() {
  forkbase::bench::RunStructuralInvariance();
  forkbase::bench::RunRecursiveIdentity();
  forkbase::bench::RunUniversalReusability();
  return 0;
}

// Ablation A3 — chunking parameters: pattern bits q, window size, and node
// bounds vs dedup effectiveness and tree shape.
//
// The §II-A pattern fires when the q low bits of the rolling hash are zero,
// so E[node size] ≈ 2^q bytes. Small q ⇒ many small chunks ⇒ finer dedup but
// more per-chunk overhead and taller trees; large q ⇒ the opposite. We sweep
// q on (a) a 4 MB blob with a 1-byte edit and (b) a 50k-entry map with one
// updated entry, reporting chunk statistics and the bytes a single edit
// costs. Also reports rolling-hash throughput per window size.
#include "bench_common.h"
#include "chunk/mem_chunk_store.h"
#include "postree/tree.h"
#include "util/rolling_hash.h"

namespace forkbase {
namespace bench {
namespace {

void RunBlobSweep() {
  PrintHeader("A3.1 blob chunking: q vs chunk size and edit cost (4 MB blob)");
  std::string data = Rng(41).NextBytes(4 << 20);
  std::string edited = data;
  edited[2 << 20] = static_cast<char>(edited[2 << 20] ^ 0x33);

  std::printf("%-5s %10s %14s %12s %8s %18s\n", "q", "chunks",
              "avg chunk (B)", "height", "build", "1-byte edit cost");
  PrintRule();
  for (uint32_t q : {8u, 10u, 12u, 14u, 16u}) {
    TreeConfig config = TreeConfig::ForBlob();
    config.leaf.q_bits = q;
    config.leaf.min_bytes = (1u << q) / 4;
    config.leaf.max_bytes = (1u << q) * 4;

    MemChunkStore store;
    Timer tb;
    auto info = PosTree::BuildBlob(&store, data, config);
    double build_ms = tb.ElapsedMs();
    if (!info.ok()) return;
    PosTree tree(&store, ChunkType::kBlobLeaf, info->root, config);
    auto shape = tree.Shape();
    if (!shape.ok()) return;

    uint64_t before = store.stats().physical_bytes;
    auto info2 = PosTree::BuildBlob(&store, edited, config);
    if (!info2.ok()) return;
    uint64_t edit_cost = store.stats().physical_bytes - before;

    std::printf("%-5u %10llu %14.0f %12u %6.0fms %15.1f KB\n", q,
                static_cast<unsigned long long>(shape->leaf_nodes),
                static_cast<double>(shape->total_bytes) /
                    static_cast<double>(shape->total_nodes),
                shape->height, build_ms, ToKb(edit_cost));
  }
  std::printf("expected: avg chunk tracks 2^q; the 1-byte edit cost grows\n"
              "with chunk size (one chunk chain must be rewritten).\n");
}

void RunMapSweep() {
  PrintHeader("A3.2 map chunking: q vs single-update commit cost (50k keys)");
  auto kvs = RandomKvs(50000, 42);
  std::printf("%-5s %10s %12s %20s\n", "q", "pages", "height",
              "1-update cost (KB)");
  PrintRule();
  for (uint32_t q : {9u, 11u, 13u}) {
    TreeConfig config;
    config.leaf.q_bits = q;
    config.leaf.min_bytes = (1u << q) / 4;
    config.leaf.max_bytes = (1u << q) * 4;
    config.index = config.leaf;

    MemChunkStore store;
    auto info = PosTree::BuildKeyed(&store, ChunkType::kMapLeaf, kvs, config);
    if (!info.ok()) return;
    PosTree tree(&store, ChunkType::kMapLeaf, info->root, config);
    auto shape = tree.Shape();
    if (!shape.ok()) return;

    uint64_t before = store.stats().physical_bytes;
    auto updated =
        tree.ApplyKeyedOps({KeyedOp{kvs[25000].first, std::string("x")}});
    if (!updated.ok()) return;
    uint64_t cost = store.stats().physical_bytes - before;
    std::printf("%-5u %10llu %12u %20.2f\n", q,
                static_cast<unsigned long long>(shape->total_nodes),
                shape->height, ToKb(cost));
  }
}

void RunRollingHashThroughput() {
  PrintHeader("A3.3 rolling-hash throughput vs window size");
  std::string data = Rng(43).NextBytes(16 << 20);
  std::printf("%-10s %14s %14s\n", "window", "MB/s", "pattern rate");
  PrintRule();
  for (size_t window : {16u, 32u, 48u, 64u, 128u}) {
    RollingHash h(window, 12);
    uint64_t fired = 0;
    Timer t;
    for (char c : data) fired += h.Roll(static_cast<uint8_t>(c));
    double secs = t.ElapsedUs() / 1e6;
    std::printf("%-10zu %14.0f %13.5f%%\n", window,
                ToMb(data.size()) / secs,
                100.0 * static_cast<double>(fired) /
                    static_cast<double>(data.size()));
  }
  std::printf("expected: throughput is window-independent (O(1) per byte);\n"
              "pattern rate ~ 2^-12 = 0.0244%%.\n");
}

}  // namespace
}  // namespace bench
}  // namespace forkbase

int main() {
  forkbase::bench::RunBlobSweep();
  forkbase::bench::RunMapSweep();
  forkbase::bench::RunRollingHashThroughput();
  return 0;
}
